//! Slot-resolved execution program for the simulated machine.
//!
//! [`Machine::run`](crate::Machine::run) is the innermost loop of the whole
//! toolchain: the heuristic test-data search executes every individual of
//! every generation on it, and the measurement campaign replays every
//! distinct vector.  Interpreting the mini-C AST directly pays a hash-map
//! lookup per variable read and an AST walk per statement on every single
//! run.  [`ExecProgram::compile`] removes all of that once per
//! [`Machine`](crate::Machine): variables become dense *slots* in a flat
//! `Vec<i64>`, expressions become an index-linked node pool, statements and
//! terminators become pre-priced instructions (the per-outcome cycle charges
//! are looked up from tables computed with the exact same
//! [`terminator_cycles`]/[`OpCounts::cycles`](crate::compile::OpCounts)
//! arithmetic the AST path used), and loop-bound bookkeeping becomes an
//! indexed counter array.  Execution semantics — wrapping arithmetic,
//! short-circuit `&&`/`||`, C truthiness, division faults, visibility of
//! locals during initialisation — mirror
//! [`tmg_minic::interp::eval_expr`] exactly, so run results are
//! bit-identical to the AST interpreter (the machine's test suite replays
//! runs against it).

use crate::compile::{terminator_cycles, CompiledFunction};
use crate::cost::CostModel;
use rustc_hash::FxHashMap;
use tmg_cfg::{BlockId, BlockKind, Cfg, Terminator};
use tmg_minic::ast::{BinOp, Expr, Function, Stmt, StmtId, UnOp};
use tmg_minic::types::Ty;

/// One node of the resolved expression pool.
#[derive(Debug, Clone)]
pub(crate) enum CNode {
    /// Integer literal.
    Int(i64),
    /// Read of the variable in the given slot.
    Slot(u32),
    /// Read of a name that is not visible here (faults at evaluation, like
    /// the AST interpreter's unknown-variable error).
    Unknown(u32),
    /// Unary operation.
    Unary { op: UnOp, operand: u32 },
    /// Binary operation.
    Binary { op: BinOp, lhs: u32, rhs: u32 },
}

/// A resolved statement of a basic-block body.
#[derive(Debug, Clone)]
pub(crate) enum CStmt {
    /// `slot = value`, wrapped to the slot's declared type.
    Assign { slot: u32, ty: Ty, value: u32 },
    /// Store to an undeclared variable: evaluates the value (whose faults
    /// take precedence, matching the AST order) and then faults itself.
    AssignUnknown { name: u32, value: u32 },
    /// Call statement: arguments are evaluated for their faults only (a call
    /// never changes caller state).  The interned callee name lets the
    /// module machine resolve defined callees when it replays a recorded
    /// run interprocedurally; the plain machine ignores it.
    EvalArgs { callee: u32, args: Box<[u32]> },
    /// `return [value]`.
    Return { value: Option<u32> },
}

/// A resolved terminator.  Destinations stay [`BlockId`]s (they index the
/// block table); cycle charges per outcome live in the owning
/// [`ExecBlock::term_costs`].
#[derive(Debug, Clone)]
pub(crate) enum CTerm {
    Halt,
    Jump {
        dest: BlockId,
    },
    Return {
        exit: BlockId,
    },
    Branch {
        stmt: StmtId,
        cond: u32,
        then_dest: BlockId,
        else_dest: BlockId,
        /// `(dense loop index, declared bound)` when this branch is a loop
        /// condition.
        looping: Option<(u32, u32)>,
    },
    Switch {
        stmt: StmtId,
        selector: u32,
        arms: Box<[(i64, BlockId)]>,
        default_dest: BlockId,
    },
}

/// One block of the execution program.
#[derive(Debug, Clone)]
pub(crate) struct ExecBlock {
    pub(crate) stmts: Box<[CStmt]>,
    /// Straight-line cycle cost of the body under the machine's cost model.
    pub(crate) body_cycles: u64,
    pub(crate) term: CTerm,
    /// Cycle charge per terminator outcome (same indexing as
    /// [`terminator_cycles`]).
    pub(crate) term_costs: Box<[u64]>,
}

/// An evaluation fault (mapped to a `TargetError` by the machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Fault {
    DivisionByZero,
    ModuloByZero,
    UnknownVar(u32),
    UnknownStore(u32),
}

/// The whole function, resolved for execution under one cost model.
#[derive(Debug, Clone)]
pub(crate) struct ExecProgram {
    nodes: Vec<CNode>,
    /// Interned names for fault messages (unknown reads/stores).
    names: Vec<String>,
    /// Declared type per slot.
    pub(crate) slot_tys: Box<[Ty]>,
    /// `(name, slot, type)` per function parameter, in declaration order.
    pub(crate) params: Box<[(String, u32, Ty)]>,
    /// `(slot, type, init expr)` per local, in declaration order.
    pub(crate) locals: Box<[(u32, Ty, Option<u32>)]>,
    pub(crate) blocks: Box<[ExecBlock]>,
    /// Number of distinct bounded loops (size of the iteration-counter
    /// array).
    pub(crate) loop_count: usize,
}

impl ExecProgram {
    /// Resolves `cfg`/`function` against `cost` once.
    pub(crate) fn compile(
        cfg: &Cfg,
        function: &Function,
        cost: &CostModel,
        compiled: &CompiledFunction,
    ) -> ExecProgram {
        let mut builder = Builder {
            nodes: Vec::new(),
            names: Vec::new(),
            name_ids: FxHashMap::default(),
            slots: FxHashMap::default(),
            slot_tys: Vec::new(),
        };

        // Parameters are visible everywhere; locals become visible one by
        // one, so an initialiser reading a *later* local faults exactly like
        // the AST interpreter's unknown-variable read.
        let mut params = Vec::with_capacity(function.params.len());
        for param in &function.params {
            let slot = builder.declare(&param.name, param.ty);
            params.push((param.name.clone(), slot, param.ty));
        }
        let mut locals = Vec::with_capacity(function.locals.len());
        for local in &function.locals {
            let init = local.init.as_ref().map(|e| builder.resolve(e));
            let slot = builder.declare(&local.name, local.ty);
            locals.push((slot, local.ty, init));
        }

        // Dense loop indices, in first-encounter (block) order.
        let mut loop_ids: FxHashMap<StmtId, u32> = FxHashMap::default();
        let blocks: Vec<ExecBlock> = cfg
            .blocks()
            .iter()
            .map(|block| {
                let stmts: Vec<CStmt> = block
                    .stmts
                    .iter()
                    .map(|stmt| builder.resolve_stmt(stmt))
                    .collect();
                let (term, outcomes) = match &block.terminator {
                    Terminator::Halt => (CTerm::Halt, 0),
                    Terminator::Jump(dest) => (CTerm::Jump { dest: *dest }, 1),
                    Terminator::Return { exit } => (CTerm::Return { exit: *exit }, 1),
                    Terminator::Branch {
                        stmt,
                        cond,
                        then_dest,
                        else_dest,
                    } => {
                        let looping = cfg.loop_bound(*stmt).map(|bound| {
                            let next = loop_ids.len() as u32;
                            (*loop_ids.entry(*stmt).or_insert(next), bound)
                        });
                        (
                            CTerm::Branch {
                                stmt: *stmt,
                                cond: builder.resolve(cond),
                                then_dest: *then_dest,
                                else_dest: *else_dest,
                                looping,
                            },
                            2,
                        )
                    }
                    Terminator::Switch {
                        stmt,
                        selector,
                        arms,
                        default_dest,
                    } => (
                        CTerm::Switch {
                            stmt: *stmt,
                            selector: builder.resolve(selector),
                            arms: arms.clone().into_boxed_slice(),
                            default_dest: *default_dest,
                        },
                        arms.len() + 1,
                    ),
                };
                let mut term_costs = Vec::with_capacity(outcomes);
                for outcome in 0..outcomes {
                    let charge = match &block.terminator {
                        // The virtual entry block's transfer is free (the
                        // run loop used to special-case it).
                        Terminator::Jump(_) if block.kind == BlockKind::Entry => 0,
                        other => terminator_cycles(other, outcome, cost),
                    };
                    term_costs.push(charge);
                }
                ExecBlock {
                    stmts: stmts.into_boxed_slice(),
                    body_cycles: compiled.block_cycles(block.id, cost),
                    term,
                    term_costs: term_costs.into_boxed_slice(),
                }
            })
            .collect();

        ExecProgram {
            nodes: builder.nodes,
            names: builder.names,
            slot_tys: builder.slot_tys.into_boxed_slice(),
            params: params.into_boxed_slice(),
            locals: locals.into_boxed_slice(),
            blocks: blocks.into_boxed_slice(),
            loop_count: loop_ids.len(),
        }
    }

    /// Name behind an interned fault id.
    pub(crate) fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Evaluates pool node `id` over the slot environment, with the exact
    /// semantics of [`tmg_minic::interp::eval_expr`].
    pub(crate) fn eval(&self, id: u32, env: &[i64]) -> Result<i64, Fault> {
        match &self.nodes[id as usize] {
            CNode::Int(v) => Ok(*v),
            CNode::Slot(slot) => Ok(env[*slot as usize]),
            CNode::Unknown(name) => Err(Fault::UnknownVar(*name)),
            CNode::Unary { op, operand } => {
                let v = self.eval(*operand, env)?;
                Ok(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => i64::from(v == 0),
                    UnOp::BitNot => !v,
                })
            }
            CNode::Binary { op, lhs, rhs } => {
                // Short-circuit evaluation for logical connectives.
                if *op == BinOp::And {
                    if self.eval(*lhs, env)? == 0 {
                        return Ok(0);
                    }
                    return Ok(i64::from(self.eval(*rhs, env)? != 0));
                }
                if *op == BinOp::Or {
                    if self.eval(*lhs, env)? != 0 {
                        return Ok(1);
                    }
                    return Ok(i64::from(self.eval(*rhs, env)? != 0));
                }
                let l = self.eval(*lhs, env)?;
                let r = self.eval(*rhs, env)?;
                Ok(match op {
                    BinOp::Add => l.wrapping_add(r),
                    BinOp::Sub => l.wrapping_sub(r),
                    BinOp::Mul => l.wrapping_mul(r),
                    BinOp::Div => {
                        if r == 0 {
                            return Err(Fault::DivisionByZero);
                        }
                        l.wrapping_div(r)
                    }
                    BinOp::Mod => {
                        if r == 0 {
                            return Err(Fault::ModuloByZero);
                        }
                        l.wrapping_rem(r)
                    }
                    BinOp::Lt => i64::from(l < r),
                    BinOp::Le => i64::from(l <= r),
                    BinOp::Gt => i64::from(l > r),
                    BinOp::Ge => i64::from(l >= r),
                    BinOp::Eq => i64::from(l == r),
                    BinOp::Ne => i64::from(l != r),
                    BinOp::BitAnd => l & r,
                    BinOp::BitOr => l | r,
                    BinOp::BitXor => l ^ r,
                    BinOp::Shl => l.wrapping_shl((r & 63) as u32),
                    BinOp::Shr => l.wrapping_shr((r & 63) as u32),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                })
            }
        }
    }

    /// Renders a fault as the interpreter-compatible message.
    pub(crate) fn fault_message(&self, fault: Fault) -> String {
        match fault {
            Fault::DivisionByZero => "division by zero".to_owned(),
            Fault::ModuloByZero => "modulo by zero".to_owned(),
            Fault::UnknownVar(name) => {
                format!("read of unknown variable `{}`", self.name(name))
            }
            Fault::UnknownStore(name) => {
                format!("store to unknown variable `{}`", self.name(name))
            }
        }
    }
}

struct Builder {
    nodes: Vec<CNode>,
    names: Vec<String>,
    name_ids: FxHashMap<String, u32>,
    slots: FxHashMap<String, u32>,
    slot_tys: Vec<Ty>,
}

impl Builder {
    fn declare(&mut self, name: &str, ty: Ty) -> u32 {
        match self.slots.get(name) {
            // Re-declaration (a local shadowing a param of the same name)
            // re-uses the slot and updates the type, like the AST env's
            // later insert winning.
            Some(&slot) => {
                self.slot_tys[slot as usize] = ty;
                slot
            }
            None => {
                let slot = self.slot_tys.len() as u32;
                self.slots.insert(name.to_owned(), slot);
                self.slot_tys.push(ty);
                slot
            }
        }
    }

    fn name_id(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.name_ids.insert(name.to_owned(), id);
        id
    }

    fn push(&mut self, node: CNode) -> u32 {
        self.nodes.push(node);
        (self.nodes.len() - 1) as u32
    }

    fn resolve(&mut self, expr: &Expr) -> u32 {
        match expr {
            Expr::Int(v) => self.push(CNode::Int(*v)),
            Expr::Var(name) => match self.slots.get(name.as_str()) {
                Some(&slot) => self.push(CNode::Slot(slot)),
                None => {
                    let id = self.name_id(name);
                    self.push(CNode::Unknown(id))
                }
            },
            Expr::Unary { op, operand } => {
                let operand = self.resolve(operand);
                self.push(CNode::Unary { op: *op, operand })
            }
            Expr::Binary { op, lhs, rhs } => {
                let lhs = self.resolve(lhs);
                let rhs = self.resolve(rhs);
                self.push(CNode::Binary { op: *op, lhs, rhs })
            }
        }
    }

    fn resolve_stmt(&mut self, stmt: &Stmt) -> CStmt {
        match stmt {
            Stmt::Assign { target, value, .. } => {
                let value = self.resolve(value);
                match self.slots.get(target.as_str()) {
                    Some(&slot) => CStmt::Assign {
                        slot,
                        ty: self.slot_tys[slot as usize],
                        value,
                    },
                    None => {
                        let name = self.name_id(target);
                        CStmt::AssignUnknown { name, value }
                    }
                }
            }
            Stmt::Call { callee, args, .. } => {
                let callee = self.name_id(callee);
                let args: Vec<u32> = args.iter().map(|a| self.resolve(a)).collect();
                CStmt::EvalArgs {
                    callee,
                    args: args.into_boxed_slice(),
                }
            }
            Stmt::Return { value, .. } => CStmt::Return {
                value: value.as_ref().map(|e| self.resolve(e)),
            },
            Stmt::If { .. } | Stmt::Switch { .. } | Stmt::While { .. } => {
                unreachable!("branching statements live in terminators")
            }
        }
    }
}
