//! Whole-module execution: the interprocedural counterpart of [`Machine`].
//!
//! The single-function [`Machine`] treats every `call` as an external leaf —
//! it evaluates the arguments (for their faults) and charges the uniform
//! transfer overhead.  For *module-level* soundness checks the oracle has to
//! execute defined callees for real: the end-to-end cycles of `root(inputs)`
//! are root's own cycles plus, for every executed call to a defined
//! function, that callee's end-to-end cycles on the actual argument values.
//!
//! [`ModuleMachine`] holds one [`Machine`] per defined function (all under
//! the same *base* cost model, i.e. without callee summary bounds — the
//! transfer overhead is charged by the caller, the body by the callee) and
//! replays recorded call statements transitively.  Argument values bind to
//! the callee's parameters positionally and are wrapped to the declared
//! parameter types, exactly as [`Machine::run`] wraps incoming inputs.
//!
//! The composed WCET bound of `tmg_core::module` prices every defined call
//! site at `call_overhead + bound(callee)`; this oracle realises
//! `call_overhead + actual(callee)`, so bound ≥ actual follows by induction
//! over the (acyclic) call graph — the property the module soundness tests
//! assert on exhaustive input sweeps.

use crate::cost::CostModel;
use crate::machine::{Machine, TargetError};
use rustc_hash::FxHashMap;
use tmg_cfg::Cfg;
use tmg_minic::ast::Function;
use tmg_minic::value::InputVector;

/// A module compiled for interprocedural execution.  See the module docs.
pub struct ModuleMachine<'a> {
    machines: Vec<(&'a Function, Machine<'a>)>,
    index: FxHashMap<&'a str, usize>,
}

impl<'a> ModuleMachine<'a> {
    /// Compiles every `(function, cfg)` pair under `cost_model`.  The cost
    /// model's `call_bounds` are ignored on purpose: summary pricing is a
    /// *static* device, the oracle executes callee bodies instead.
    pub fn new(parts: &[(&'a Function, &'a Cfg)], cost_model: &CostModel) -> ModuleMachine<'a> {
        let base = CostModel {
            call_bounds: Vec::new(),
            ..cost_model.clone()
        };
        let machines: Vec<(&'a Function, Machine<'a>)> = parts
            .iter()
            .map(|&(f, cfg)| (f, Machine::new(cfg, f, base.clone())))
            .collect();
        let index = machines
            .iter()
            .enumerate()
            .map(|(i, (f, _))| (f.name.as_str(), i))
            .collect();
        ModuleMachine { machines, index }
    }

    /// Whether `name` is a defined function of this module.
    pub fn defines(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// End-to-end cycles of `root(inputs)` with every defined callee
    /// executed transitively.
    ///
    /// # Errors
    ///
    /// [`TargetError`] when `root` is not defined, when any executed
    /// function faults, or when the call depth exceeds the function count
    /// (recursion — the call-graph analysis rejects it statically, this is
    /// the dynamic backstop).
    pub fn end_to_end_cycles(&self, root: &str, inputs: &InputVector) -> Result<u64, TargetError> {
        let &i = self
            .index
            .get(root)
            .ok_or_else(|| TargetError::new(format!("undefined root function `{root}`")))?;
        self.cycles_of(i, inputs, 0)
    }

    fn cycles_of(&self, i: usize, inputs: &InputVector, depth: usize) -> Result<u64, TargetError> {
        if depth > self.machines.len() {
            return Err(TargetError::new(
                "call depth exceeded the function count (recursive module)".to_owned(),
            ));
        }
        let (_, machine) = &self.machines[i];
        let (run, calls) = machine.run_recorded(inputs)?;
        let mut total = run.cycles;
        for (callee_id, args) in calls {
            let callee_name = machine.interned_name(callee_id);
            let Some(&j) = self.index.get(callee_name) else {
                continue; // external leaf: its body is the transfer overhead
            };
            let (callee, _) = &self.machines[j];
            let mut callee_inputs = InputVector::new();
            for (param, value) in callee.params.iter().zip(args) {
                callee_inputs = callee_inputs.with(&param.name, value);
            }
            total += self.cycles_of(j, &callee_inputs, depth + 1)?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_cfg::build_cfg;
    use tmg_minic::parse_program;

    fn module_cycles(source: &str, root: &str, inputs: &InputVector) -> u64 {
        let program = parse_program(source).expect("parse");
        let lowered: Vec<_> = program.functions.iter().map(build_cfg).collect();
        let parts: Vec<_> = program
            .functions
            .iter()
            .zip(&lowered)
            .map(|(f, l)| (f, &l.cfg))
            .collect();
        ModuleMachine::new(&parts, &CostModel::hcs12())
            .end_to_end_cycles(root, inputs)
            .expect("module run")
    }

    #[test]
    fn defined_callee_bodies_are_executed_not_leaf_priced() {
        // Same call shape, but `callee` is defined in the second module: the
        // end-to-end cycles must grow by exactly the callee's body.
        let leaf_only = "void root(char a __range(0, 3)) { callee(a); }";
        let with_body = "void root(char a __range(0, 3)) { callee(a); } \
                         void callee(char v __range(0, 3)) { if (v > 1) { work(); } }";
        let inputs = InputVector::new().with("a", 3);
        let leaf = module_cycles(leaf_only, "root", &inputs);
        let composed = module_cycles(with_body, "root", &inputs);
        let callee_alone = module_cycles(
            "void callee(char v __range(0, 3)) { if (v > 1) { work(); } }",
            "callee",
            &InputVector::new().with("v", 3),
        );
        assert_eq!(composed, leaf + callee_alone);
    }

    #[test]
    fn arguments_bind_positionally_and_wrap_to_the_parameter_type() {
        let source = "void root(int a) { callee(a + 1); } \
                      void callee(char v) { if (v > 10) { expensive(); } }";
        let cheap = module_cycles(source, "root", &InputVector::new().with("a", 4));
        let costly = module_cycles(source, "root", &InputVector::new().with("a", 99));
        assert!(costly > cheap, "the argument value must reach the callee");
        // 255 wraps to -1 as a signed char: the expensive branch is off.
        let wrapped = module_cycles(source, "root", &InputVector::new().with("a", 254));
        assert_eq!(wrapped, cheap, "254 + 1 wraps to char -1, not 255");
    }

    #[test]
    fn transitive_chains_accumulate_every_level() {
        let source = "void a() { b(); } void b() { c(); } void c() { leaf(); }";
        let a = module_cycles(source, "a", &InputVector::new());
        let b = module_cycles(source, "b", &InputVector::new());
        let c = module_cycles(source, "c", &InputVector::new());
        assert!(a > b && b > c, "each level adds its own frame: {a} {b} {c}");
    }

    #[test]
    fn undefined_root_is_an_error() {
        let program = parse_program("void f() { x(); }").expect("parse");
        let lowered: Vec<_> = program.functions.iter().map(build_cfg).collect();
        let parts: Vec<_> = program
            .functions
            .iter()
            .zip(&lowered)
            .map(|(f, l)| (f, &l.cfg))
            .collect();
        let machine = ModuleMachine::new(&parts, &CostModel::hcs12());
        assert!(machine
            .end_to_end_cycles("missing", &InputVector::new())
            .is_err());
        assert!(machine.defines("f"));
        assert!(!machine.defines("missing"));
    }
}
