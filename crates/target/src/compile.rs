//! "Compilation" of a CFG for the simulated target: per-block cycle
//! aggregates and terminator outcome costs.
//!
//! The simulated machine does not lower mini-C to real HCS12 opcodes; it
//! aggregates, once per function, how many operations of each
//! [`CostModel`]-priced class every basic block contains.  Cycle counts for
//! any cost model are then a dot product, so the same compiled function can
//! be executed (or statically estimated) under different cost models without
//! re-walking the AST.

use crate::cost::CostModel;
use serde::{Deserialize, Serialize};
use tmg_cfg::{BlockId, Cfg, Terminator};
use tmg_minic::ast::Stmt;

/// Operation counts of one basic block's straight-line body.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Expression AST nodes evaluated (operand loads / ALU operations).
    pub expr_nodes: u64,
    /// Assignment stores.
    pub stores: u64,
    /// External leaf calls.
    pub calls: u64,
}

impl OpCounts {
    /// Cycle cost of these operations under `cost`.  Calls are priced at the
    /// plain transfer overhead here; callee summary surcharges (if the cost
    /// model carries [`CostModel::call_bounds`]) are added per named call
    /// site by [`CompiledFunction::block_cycles`].
    pub fn cycles(&self, cost: &CostModel) -> u64 {
        self.expr_nodes * cost.expr_node
            + self.stores * cost.store
            + self.calls * cost.call_overhead
    }

    fn add_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Assign { value, .. } => {
                self.expr_nodes += value.node_count() as u64;
                self.stores += 1;
            }
            Stmt::Call { args, .. } => {
                self.expr_nodes += args.iter().map(|a| a.node_count() as u64).sum::<u64>();
                self.calls += 1;
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    self.expr_nodes += v.node_count() as u64;
                }
            }
            // Branching statements never appear in a block body; their cost
            // lives in the terminator (see `terminator_cycles`).
            Stmt::If { .. } | Stmt::Switch { .. } | Stmt::While { .. } => {}
        }
    }
}

/// A function compiled for the simulated target: per-block operation counts,
/// indexed by [`BlockId`], plus the callee names behind each block's call
/// sites (the hook interprocedural summary pricing hangs off).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompiledFunction {
    blocks: Vec<OpCounts>,
    /// Per block: `(callee name, call-site count)` for every distinct callee
    /// called in the block body, sorted by name.  Empty slices for the
    /// (overwhelmingly common) call-free blocks.
    block_calls: Vec<Box<[(String, u64)]>>,
}

impl CompiledFunction {
    /// Aggregates the operation counts of every block of `cfg`.
    pub fn compile(cfg: &Cfg) -> CompiledFunction {
        let mut block_calls = Vec::with_capacity(cfg.block_count());
        let blocks = cfg
            .blocks()
            .iter()
            .map(|b| {
                let mut counts = OpCounts::default();
                let mut calls: Vec<(String, u64)> = Vec::new();
                for stmt in &b.stmts {
                    counts.add_stmt(stmt);
                    if let Stmt::Call { callee, .. } = stmt {
                        match calls.iter_mut().find(|(name, _)| name == callee) {
                            Some((_, count)) => *count += 1,
                            None => calls.push((callee.clone(), 1)),
                        }
                    }
                }
                calls.sort();
                block_calls.push(calls.into_boxed_slice());
                counts
            })
            .collect();
        CompiledFunction {
            blocks,
            block_calls,
        }
    }

    /// Cycle cost of the straight-line body of `block` under `cost`
    /// (terminator not included).  When the cost model carries callee
    /// summary bounds, every call site to a summarised callee is surcharged
    /// by that callee's bound on top of the uniform transfer overhead.
    pub fn block_cycles(&self, block: BlockId, cost: &CostModel) -> u64 {
        let base = self.blocks[block.index()].cycles(cost);
        if cost.call_bounds.is_empty() {
            return base;
        }
        let surcharge: u64 = self.block_calls[block.index()]
            .iter()
            .filter_map(|(callee, count)| cost.callee_bound(callee).map(|b| b * count))
            .sum();
        base + surcharge
    }

    /// Raw operation counts of `block`.
    pub fn block_ops(&self, block: BlockId) -> OpCounts {
        self.blocks[block.index()]
    }

    /// Number of compiled blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

/// Cycle cost of resolving `terminator` with the given `outcome`.
///
/// The outcome index selects which way the control transfer went:
///
/// * [`Terminator::Branch`] — `0` = condition true (taken), anything else =
///   not taken; both include the condition evaluation.
/// * [`Terminator::Switch`] — `i < arms.len()` = the ladder matched after
///   `i + 1` comparisons; `i >= arms.len()` = the default arm after the full
///   ladder.  Both include the selector evaluation and the final jump.
/// * [`Terminator::Jump`] / [`Terminator::Return`] / [`Terminator::Halt`] —
///   the outcome index is ignored.
pub fn terminator_cycles(terminator: &Terminator, outcome: usize, cost: &CostModel) -> u64 {
    match terminator {
        Terminator::Jump(_) => cost.jump,
        Terminator::Return { .. } => cost.return_transfer,
        Terminator::Halt => 0,
        Terminator::Branch { cond, .. } => {
            let eval = cond.node_count() as u64 * cost.expr_node;
            if outcome == 0 {
                eval + cost.branch_taken
            } else {
                eval + cost.branch_not_taken
            }
        }
        Terminator::Switch { selector, arms, .. } => {
            let eval = selector.node_count() as u64 * cost.expr_node;
            let compares = (outcome + 1).min(arms.len()).max(1) as u64;
            eval + compares * cost.case_compare + cost.jump
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_cfg::build_cfg;
    use tmg_minic::parse_function;

    fn compiled(src: &str) -> (tmg_cfg::LoweredFunction, CompiledFunction) {
        let lowered = build_cfg(&parse_function(src).expect("parse"));
        let compiled = CompiledFunction::compile(&lowered.cfg);
        (lowered, compiled)
    }

    #[test]
    fn counts_follow_the_block_bodies() {
        let (lowered, compiled) = compiled("void f(int a) { a = a + 1; leaf(a); }");
        assert_eq!(compiled.block_count(), lowered.cfg.block_count());
        let total: u64 = lowered
            .cfg
            .blocks()
            .iter()
            .map(|b| compiled.block_ops(b.id).stores + compiled.block_ops(b.id).calls)
            .sum();
        assert_eq!(total, 2, "one store and one call in the whole function");
    }

    #[test]
    fn virtual_blocks_cost_nothing() {
        let (lowered, compiled) = compiled("void f() { work(); }");
        let cost = CostModel::hcs12();
        assert_eq!(compiled.block_cycles(lowered.cfg.entry(), &cost), 0);
        assert_eq!(compiled.block_cycles(lowered.cfg.exit(), &cost), 0);
    }

    #[test]
    fn branch_outcomes_price_taken_and_not_taken() {
        let (lowered, _) = compiled("void f(int a) { if (a) { x(); } }");
        let cost = CostModel::hcs12();
        let branch = lowered
            .cfg
            .blocks()
            .iter()
            .find(|b| b.terminator.is_branch())
            .expect("branch block");
        let taken = terminator_cycles(&branch.terminator, 0, &cost);
        let not_taken = terminator_cycles(&branch.terminator, 1, &cost);
        assert!(taken > not_taken);
    }

    #[test]
    fn call_bounds_surcharge_summarised_call_sites() {
        let (lowered, compiled) = compiled("void f(int a) { helper(a); helper(a); other(); }");
        let plain = CostModel::hcs12();
        let priced = CostModel::hcs12().with_call_bounds(vec![("helper".to_owned(), 50)]);
        let plain_total: u64 = lowered
            .cfg
            .blocks()
            .iter()
            .map(|b| compiled.block_cycles(b.id, &plain))
            .sum();
        let priced_total: u64 = lowered
            .cfg
            .blocks()
            .iter()
            .map(|b| compiled.block_cycles(b.id, &priced))
            .sum();
        assert_eq!(
            priced_total,
            plain_total + 2 * 50,
            "two helper sites surcharge the bound twice; `other` stays leaf-priced"
        );
    }

    #[test]
    fn switch_ladder_cost_grows_with_arm_position() {
        let (lowered, _) =
            compiled("void f(int s) { switch (s) { case 0: a(); break; case 1: b(); break; } }");
        let cost = CostModel::hcs12();
        let switch = lowered
            .cfg
            .blocks()
            .iter()
            .find(|b| matches!(b.terminator, Terminator::Switch { .. }))
            .expect("switch block");
        let first = terminator_cycles(&switch.terminator, 0, &cost);
        let second = terminator_cycles(&switch.terminator, 1, &cost);
        let default = terminator_cycles(&switch.terminator, 2, &cost);
        assert!(first < second);
        assert_eq!(second, default, "default pays the whole ladder");
    }
}
