//! Per-operation cycle costs of the simulated target CPU.

use serde::{Deserialize, Serialize};

/// Cycle costs charged by the [`Machine`](crate::Machine) per executed
/// operation.
///
/// The numbers are per *operation class*, not per opcode: expression
/// evaluation is charged per AST node (each node is roughly one load or one
/// ALU operation on an accumulator machine), stores, calls and control
/// transfers have their own costs.  [`CostModel::hcs12`] provides values
/// approximating the 16-bit HCS12 the paper measures on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cycles per expression AST node (operand load / ALU operation).
    pub expr_node: u64,
    /// Cycles to store an assignment result.
    pub store: u64,
    /// Call/return overhead of an external leaf routine (`JSR` + callee body
    /// + `RTS`); argument evaluation is charged per expression node on top.
    pub call_overhead: u64,
    /// Cycles of a conditional branch whose condition is true (branch taken).
    pub branch_taken: u64,
    /// Cycles of a conditional branch whose condition is false.
    pub branch_not_taken: u64,
    /// Cycles per comparison in a `switch` compare ladder.
    pub case_compare: u64,
    /// Cycles of an unconditional jump.
    pub jump: u64,
    /// Cycles of the return transfer (`RTS`) back to the harness.
    pub return_transfer: u64,
    /// Cycles consumed by one cycle-counter read at an instrumentation point
    /// (`LDD TCNT; STD buffer` on the real part).  Charged *after* the
    /// reading is recorded.
    pub read_cycle_counter: u64,
    /// Summary bounds of *defined* callees, sorted by callee name: a call to
    /// a listed function is priced `call_overhead + bound` (the callee's
    /// composed WCET bound standing in for its body), while unlisted names
    /// keep the plain leaf pricing.  Empty for single-function analysis —
    /// interprocedural composition (`tmg_core::module`) fills it bottom-up
    /// from the callees' bound artifacts.  The field participates in `Debug`
    /// (and therefore in every artifact key derived from the cost model), so
    /// a changed callee bound automatically re-keys the caller's campaign
    /// and bound artifacts.
    pub call_bounds: Vec<(String, u64)>,
}

impl CostModel {
    /// Cycle costs approximating the Motorola HCS12 target of the paper.
    pub fn hcs12() -> CostModel {
        CostModel {
            expr_node: 1,
            store: 2,
            call_overhead: 20,
            branch_taken: 3,
            branch_not_taken: 1,
            case_compare: 2,
            jump: 3,
            return_transfer: 5,
            read_cycle_counter: 2,
            call_bounds: Vec::new(),
        }
    }

    /// A uniform unit-cost model, useful for tests that count operations
    /// rather than cycles.
    pub fn unit() -> CostModel {
        CostModel {
            expr_node: 1,
            store: 1,
            call_overhead: 1,
            branch_taken: 1,
            branch_not_taken: 1,
            case_compare: 1,
            jump: 1,
            return_transfer: 1,
            read_cycle_counter: 1,
            call_bounds: Vec::new(),
        }
    }

    /// The same model with callee summary bounds installed (sorted by name
    /// so the `Debug` rendering — and every artifact key derived from it —
    /// is canonical regardless of insertion order).
    pub fn with_call_bounds(mut self, mut bounds: Vec<(String, u64)>) -> CostModel {
        bounds.sort();
        bounds.dedup();
        self.call_bounds = bounds;
        self
    }

    /// The summary bound priced into calls to `callee`, if one is installed.
    pub fn callee_bound(&self, callee: &str) -> Option<u64> {
        self.call_bounds
            .binary_search_by(|(name, _)| name.as_str().cmp(callee))
            .ok()
            .map(|i| self.call_bounds[i].1)
    }

    /// Full static price of one call statement to `callee`: the transfer
    /// overhead plus the callee's summary bound (zero for external leaves).
    pub fn call_cycles(&self, callee: &str) -> u64 {
        self.call_overhead + self.callee_bound(callee).unwrap_or(0)
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::hcs12()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hcs12_is_the_default() {
        assert_eq!(CostModel::default(), CostModel::hcs12());
    }

    #[test]
    fn counter_read_is_cheaper_than_a_call() {
        let m = CostModel::hcs12();
        assert!(m.read_cycle_counter < m.call_overhead);
        assert!(m.read_cycle_counter > 0);
    }

    #[test]
    fn call_bounds_price_summarised_callees_only() {
        let m = CostModel::hcs12()
            .with_call_bounds(vec![("zeta".to_owned(), 100), ("alpha".to_owned(), 40)]);
        assert_eq!(
            m.call_bounds,
            vec![("alpha".to_owned(), 40), ("zeta".to_owned(), 100)],
            "bounds are canonically sorted"
        );
        assert_eq!(m.callee_bound("alpha"), Some(40));
        assert_eq!(m.callee_bound("external"), None);
        assert_eq!(m.call_cycles("zeta"), m.call_overhead + 100);
        assert_eq!(m.call_cycles("external"), m.call_overhead);
    }

    #[test]
    fn call_bounds_re_key_the_debug_rendering() {
        let plain = CostModel::hcs12();
        let priced = CostModel::hcs12().with_call_bounds(vec![("g".to_owned(), 7)]);
        assert_ne!(format!("{plain:?}"), format!("{priced:?}"));
    }
}
