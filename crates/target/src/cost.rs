//! Per-operation cycle costs of the simulated target CPU.

use serde::{Deserialize, Serialize};

/// Cycle costs charged by the [`Machine`](crate::Machine) per executed
/// operation.
///
/// The numbers are per *operation class*, not per opcode: expression
/// evaluation is charged per AST node (each node is roughly one load or one
/// ALU operation on an accumulator machine), stores, calls and control
/// transfers have their own costs.  [`CostModel::hcs12`] provides values
/// approximating the 16-bit HCS12 the paper measures on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cycles per expression AST node (operand load / ALU operation).
    pub expr_node: u64,
    /// Cycles to store an assignment result.
    pub store: u64,
    /// Call/return overhead of an external leaf routine (`JSR` + callee body
    /// + `RTS`); argument evaluation is charged per expression node on top.
    pub call_overhead: u64,
    /// Cycles of a conditional branch whose condition is true (branch taken).
    pub branch_taken: u64,
    /// Cycles of a conditional branch whose condition is false.
    pub branch_not_taken: u64,
    /// Cycles per comparison in a `switch` compare ladder.
    pub case_compare: u64,
    /// Cycles of an unconditional jump.
    pub jump: u64,
    /// Cycles of the return transfer (`RTS`) back to the harness.
    pub return_transfer: u64,
    /// Cycles consumed by one cycle-counter read at an instrumentation point
    /// (`LDD TCNT; STD buffer` on the real part).  Charged *after* the
    /// reading is recorded.
    pub read_cycle_counter: u64,
}

impl CostModel {
    /// Cycle costs approximating the Motorola HCS12 target of the paper.
    pub fn hcs12() -> CostModel {
        CostModel {
            expr_node: 1,
            store: 2,
            call_overhead: 20,
            branch_taken: 3,
            branch_not_taken: 1,
            case_compare: 2,
            jump: 3,
            return_transfer: 5,
            read_cycle_counter: 2,
        }
    }

    /// A uniform unit-cost model, useful for tests that count operations
    /// rather than cycles.
    pub fn unit() -> CostModel {
        CostModel {
            expr_node: 1,
            store: 1,
            call_overhead: 1,
            branch_taken: 1,
            branch_not_taken: 1,
            case_compare: 1,
            jump: 1,
            return_transfer: 1,
            read_cycle_counter: 1,
        }
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::hcs12()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hcs12_is_the_default() {
        assert_eq!(CostModel::default(), CostModel::hcs12());
    }

    #[test]
    fn counter_read_is_cheaper_than_a_call() {
        let m = CostModel::hcs12();
        assert!(m.read_cycle_counter < m.call_overhead);
        assert!(m.read_cycle_counter > 0);
    }
}
