//! Stable content hashing for pipeline artifact keys.
//!
//! The staged analysis pipeline (`tmg_core::pipeline`) keys every cached
//! artifact by a content hash of its inputs — function source, cost model,
//! path bound, encoder configuration.  Those keys must be *stable*: the same
//! inputs must hash identically across runs, threads and builds, which rules
//! out `std::collections::hash_map::RandomState` (randomly seeded) and any
//! hasher whose algorithm is unspecified.  [`StableHasher`] is a plain
//! FNV-1a over the byte stream, fully determined by the bytes written.

use std::hash::Hasher;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Deterministic 64-bit FNV-1a hasher.
///
/// Usable everywhere a [`std::hash::Hasher`] is expected; `#[derive(Hash)]`
/// implementations fed through it produce stable digests because the derive
/// only ever calls the `write*` methods with value bytes in declaration
/// order.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// Digest of everything written so far.
    pub fn digest(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    // The std defaults for the multi-byte writes feed native-endian bytes,
    // which would make digests differ between little- and big-endian
    // targets; fix the byte order so the keys stay portable (persisted
    // caches must not silently miss across platforms).
    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    fn write_usize(&mut self, i: usize) {
        self.write(&(i as u64).to_le_bytes());
    }
}

/// Stable hash of a string (its UTF-8 bytes plus a length terminator, so
/// concatenation ambiguities cannot collide keys built from several parts).
pub fn stable_hash_str(s: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write(s.as_bytes());
    h.write_u64(s.len() as u64);
    h.finish()
}

/// Mixes an ordered sequence of part-hashes into one key.  Order matters:
/// `combine(&[a, b]) != combine(&[b, a])` for `a != b`.
pub fn combine_hashes(parts: &[u64]) -> u64 {
    let mut h = StableHasher::new();
    for &p in parts {
        h.write_u64(p);
    }
    h.write_u64(parts.len() as u64);
    h.finish()
}

/// Canonical filename stem of a content key: 16 lowercase hex digits, fixed
/// width so cache directories sort and compare predictably.  The persistent
/// artifact store names every on-disk artifact `<key_hex(key)>.tmga`; keeping
/// the rendering next to the hasher pins the two halves of the contract
/// (key derivation and key spelling) to one crate.
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

/// Stable fingerprint of a function: the hash of its canonical
/// pretty-printed source.  The printer emits the full semantic content —
/// name, signature with `__range` annotations, local declarations and
/// initialisers, loop `__bound`s — so two functions share a fingerprint
/// exactly when the analysis pipeline cannot distinguish them.
pub fn function_fingerprint(function: &tmg_minic::ast::Function) -> u64 {
    stable_hash_str(&tmg_minic::pretty::function_to_string(function))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_minic::parse_function;

    #[test]
    fn hashing_is_deterministic_across_hasher_instances() {
        assert_eq!(stable_hash_str("abc"), stable_hash_str("abc"));
        assert_ne!(stable_hash_str("abc"), stable_hash_str("abd"));
        // Known FNV-1a property: empty input hashes to the offset basis
        // mixed with the zero length.
        let mut h = StableHasher::new();
        h.write_u64(0);
        assert_eq!(stable_hash_str(""), h.finish());
    }

    #[test]
    fn combine_is_order_sensitive_and_length_terminated() {
        let (a, b) = (stable_hash_str("a"), stable_hash_str("b"));
        assert_ne!(combine_hashes(&[a, b]), combine_hashes(&[b, a]));
        assert_ne!(combine_hashes(&[a]), combine_hashes(&[a, a]));
    }

    #[test]
    fn key_hex_is_fixed_width_lowercase() {
        assert_eq!(key_hex(0), "0000000000000000");
        assert_eq!(key_hex(u64::MAX), "ffffffffffffffff");
        assert_eq!(key_hex(0xCBF2_9CE4_8422_2325), "cbf29ce484222325");
    }

    #[test]
    fn function_fingerprint_tracks_semantic_content() {
        let f1 = parse_function("void f(char a __range(0, 3)) { if (a) { x(); } }").unwrap();
        let f1_again = parse_function("void f(char a __range(0, 3)) { if (a) { x(); } }").unwrap();
        let wider = parse_function("void f(char a __range(0, 4)) { if (a) { x(); } }").unwrap();
        let renamed = parse_function("void g(char a __range(0, 3)) { if (a) { x(); } }").unwrap();
        assert_eq!(function_fingerprint(&f1), function_fingerprint(&f1_again));
        assert_ne!(function_fingerprint(&f1), function_fingerprint(&wider));
        assert_ne!(function_fingerprint(&f1), function_fingerprint(&renamed));
    }
}
