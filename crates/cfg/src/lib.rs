//! Control-flow graphs, dominators, program-segment regions and path
//! counting for the timing-model-generation toolchain.
//!
//! The DATE 2005 paper partitions the control flow graph of the analysed
//! function into *program segments* (PS): sub-graphs that can only be entered
//! through a single control edge.  This crate provides
//!
//! * [`builder::build_cfg`] — lowers a checked [`tmg_minic::Function`] into a
//!   [`graph::Cfg`] of basic blocks plus a [`regions::RegionTree`] describing
//!   the single-entry regions that follow the abstract syntax tree (function
//!   body, `then`/`else` branches, `switch` arms, loop bodies);
//! * [`dominators`] — an iterative dominator-tree computation used to verify
//!   that every region is indeed single-entry;
//! * [`paths`] — acyclic path counting (with loop bounds) and bounded path
//!   enumeration, the quantities the paper's path bound `b` is compared
//!   against;
//! * [`dot`] — Graphviz export for inspection.
//!
//! # Example
//!
//! ```
//! use tmg_minic::parse_function;
//! use tmg_cfg::build_cfg;
//!
//! let f = parse_function(
//!     "void f(int a) { p1(); if (a == 0) { p2(); } p3(); }",
//! )?;
//! let lowered = build_cfg(&f);
//! // entry + three code blocks + one join = 5 measurable units
//! assert_eq!(lowered.cfg.measurable_units().len(), 5);
//! assert_eq!(lowered.regions.root().path_count, 2);
//! # Ok::<(), tmg_minic::Error>(())
//! ```

pub mod block;
pub mod builder;
pub mod callgraph;
pub mod counts;
pub mod depend;
pub mod dominators;
pub mod dot;
pub mod graph;
pub mod hash;
pub mod paths;
pub mod regions;

pub use block::{BasicBlock, BlockId, BlockKind, Terminator};
pub use builder::{build_cfg, LoweredFunction};
pub use callgraph::{module_fingerprint, CallGraph, CallGraphError};
pub use counts::{PartitionStats, PathCounts};
pub use depend::{cone_of_influence, ConeOfInfluence};
pub use dominators::DominatorTree;
pub use graph::Cfg;
pub use hash::{combine_hashes, function_fingerprint, key_hex, stable_hash_str, StableHasher};
pub use paths::{
    count_paths_block, count_region_paths, enumerate_region_paths, region_path_iter, PathSpec,
    RegionPathIter,
};
pub use regions::{Region, RegionId, RegionKind, RegionTree};
