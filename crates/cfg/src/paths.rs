//! Path counting and bounded path enumeration.
//!
//! The paper's partitioning decision compares the number of paths inside a
//! program segment with the path bound `b`; the measurement phase then needs
//! the actual paths (as branch-decision sequences) so that test data forcing
//! each of them can be generated.

use crate::block::{BlockId, Terminator};
use crate::graph::Cfg;
use crate::regions::Region;
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use tmg_minic::ast::{Block, Stmt, StmtId};
use tmg_minic::interp::BranchChoice;

/// One path through a program segment, identified by the ordered sequence of
/// branch decisions taken inside the segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PathSpec {
    /// Branch decisions in execution order.
    pub decisions: Vec<(StmtId, BranchChoice)>,
}

impl PathSpec {
    /// A path with no decisions (straight-line segment).
    pub fn empty() -> PathSpec {
        PathSpec::default()
    }

    /// Number of decisions along the path.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether the path makes no decisions.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Whether `trace_decisions` (the full branch signature of an execution)
    /// covers this path: the path's decisions must appear as a contiguous
    /// subsequence when the trace is restricted to the statements this path
    /// mentions.
    pub fn matches_trace(&self, trace_decisions: &[(StmtId, BranchChoice)]) -> bool {
        if self.decisions.is_empty() {
            return true;
        }
        let relevant: HashSet<StmtId> = self.decisions.iter().map(|(s, _)| *s).collect();
        let restricted: Vec<(StmtId, BranchChoice)> = trace_decisions
            .iter()
            .copied()
            .filter(|(s, _)| relevant.contains(s))
            .collect();
        if restricted.len() < self.decisions.len() {
            return false;
        }
        restricted
            .windows(self.decisions.len())
            .any(|w| w == self.decisions.as_slice())
    }
}

impl fmt::Display for PathSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (stmt, choice)) in self.decisions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{stmt}:{choice:?}")?;
        }
        write!(f, "]")
    }
}

/// Counts the distinct execution paths through a statement list, following
/// the abstract syntax:
///
/// * a sequence multiplies its children's counts,
/// * an `if` adds the counts of its branches (an absent `else` counts 1),
/// * a `switch` adds the counts of its arms (an absent `default` counts 1),
/// * a bounded loop contributes `Σ_{k=0..bound} paths(body)^k`,
/// * a `return` truncates the remainder of its sequence (so early returns
///   never inflate the count below what the CFG admits — they may still
///   over-approximate sibling statements, which is safe for partitioning).
///
/// All arithmetic saturates at `u128::MAX`.
pub fn count_paths_block(block: &Block) -> u128 {
    let mut total: u128 = 1;
    for stmt in &block.stmts {
        let s = count_paths_stmt(stmt);
        total = total.saturating_mul(s);
        if matches!(stmt, Stmt::Return { .. }) {
            break;
        }
    }
    total
}

fn count_paths_stmt(stmt: &Stmt) -> u128 {
    match stmt {
        Stmt::Assign { .. } | Stmt::Call { .. } | Stmt::Return { .. } => 1,
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            let then_paths = count_paths_block(then_branch);
            let else_paths = else_branch.as_ref().map(count_paths_block).unwrap_or(1);
            then_paths.saturating_add(else_paths)
        }
        Stmt::Switch { cases, default, .. } => {
            let mut total: u128 = default.as_ref().map(count_paths_block).unwrap_or(1);
            for case in cases {
                total = total.saturating_add(count_paths_block(&case.body));
            }
            total
        }
        Stmt::While { bound, body, .. } => {
            crate::builder::loop_path_count(count_paths_block(body), *bound)
        }
    }
}

/// Enumerates every path through `region`, as branch-decision sequences,
/// returning `None` if more than `cap` paths exist.
///
/// The path count is determined first by [`count_region_paths`] (a memoised
/// walk that is linear in the region size for loop-free regions), so a region
/// that blows the cap is rejected without materialising a single path.  Within
/// the cap, paths come from the streaming [`region_path_iter`]; callers that
/// only need a prefix should use the iterator directly.
///
/// Loops are unrolled up to their declared bound.  The enumeration is
/// deterministic: `then` before `else`, cases in source order before
/// `default`, deeper loop iterations before shallower ones.
pub fn enumerate_region_paths(cfg: &Cfg, region: &Region, cap: usize) -> Option<Vec<PathSpec>> {
    if count_region_paths(cfg, region) > cap as u128 {
        return None;
    }
    Some(region_path_iter(cfg, region).collect())
}

/// Counts the paths through `region` over the CFG (loops unrolled to their
/// bounds), saturating at `u128::MAX`.
///
/// Unlike the AST-level [`count_paths_block`] (which over-approximates around
/// early returns), this is the exact number of sequences the streaming
/// enumerator yields.  Suffix counts are memoised per `(block, live loop
/// iterations)` state, so counting is cheap even for regions whose path count
/// is astronomically beyond any enumeration cap.
pub fn count_region_paths(cfg: &Cfg, region: &Region) -> u128 {
    let inside: FxHashSet<BlockId> = region.blocks.iter().copied().collect();
    let mut loop_iters: Vec<(StmtId, u32)> = Vec::new();
    let mut memo: CountMemo =
        FxHashMap::with_capacity_and_hasher(region.blocks.len() * 2, Default::default());
    count_from(cfg, &inside, region.entry_block, &mut loop_iters, &mut memo)
}

/// Memoised suffix counts, keyed by `(block, live loop iterations)`.
type CountMemo = FxHashMap<(BlockId, Vec<(StmtId, u32)>), u128>;

fn count_from(
    cfg: &Cfg,
    inside: &FxHashSet<BlockId>,
    block: BlockId,
    loop_iters: &mut Vec<(StmtId, u32)>,
    memo: &mut CountMemo,
) -> u128 {
    if !inside.contains(&block) {
        return 1;
    }
    let key = (block, loop_iters.clone());
    if let Some(&count) = memo.get(&key) {
        return count;
    }
    let total = match &cfg.block(block).terminator {
        Terminator::Jump(next) => count_from(cfg, inside, *next, loop_iters, memo),
        Terminator::Return { exit } => count_from(cfg, inside, *exit, loop_iters, memo),
        Terminator::Halt => 1,
        Terminator::Branch {
            stmt,
            then_dest,
            else_dest,
            ..
        } => match cfg.loop_bound(*stmt) {
            Some(bound) => {
                let taken = loop_iter_count(loop_iters, *stmt);
                let mut total = 0u128;
                if taken < bound {
                    bump_loop_iter(loop_iters, *stmt, 1);
                    total =
                        total.saturating_add(count_from(cfg, inside, *then_dest, loop_iters, memo));
                    bump_loop_iter(loop_iters, *stmt, -1);
                }
                total.saturating_add(count_from(cfg, inside, *else_dest, loop_iters, memo))
            }
            None => {
                let then_paths = count_from(cfg, inside, *then_dest, loop_iters, memo);
                then_paths.saturating_add(count_from(cfg, inside, *else_dest, loop_iters, memo))
            }
        },
        Terminator::Switch {
            arms, default_dest, ..
        } => {
            let mut total = 0u128;
            for (_, dest) in arms {
                total = total.saturating_add(count_from(cfg, inside, *dest, loop_iters, memo));
            }
            total.saturating_add(count_from(cfg, inside, *default_dest, loop_iters, memo))
        }
    };
    memo.insert(key, total);
    total
}

fn loop_iter_count(loop_iters: &[(StmtId, u32)], stmt: StmtId) -> u32 {
    loop_iters
        .iter()
        .find(|(s, _)| *s == stmt)
        .map(|(_, n)| *n)
        .unwrap_or(0)
}

fn bump_loop_iter(loop_iters: &mut Vec<(StmtId, u32)>, stmt: StmtId, delta: i64) {
    if let Some(entry) = loop_iters.iter_mut().find(|(s, _)| *s == stmt) {
        entry.1 = (i64::from(entry.1) + delta) as u32;
    } else {
        debug_assert!(delta > 0, "cannot decrement an absent loop counter");
        loop_iters.push((stmt, delta as u32));
    }
    loop_iters.retain(|(_, n)| *n > 0);
}

/// Creates a streaming enumerator over the paths of `region`.
///
/// Paths are produced on demand in the same deterministic order
/// [`enumerate_region_paths`] uses; callers needing only a count, a prefix, or
/// an existence check pay for exactly the paths they pull.
pub fn region_path_iter<'c>(cfg: &'c Cfg, region: &'c Region) -> RegionPathIter<'c> {
    RegionPathIter {
        cfg,
        inside: region.blocks.iter().copied().collect(),
        entry: region.entry_block,
        current: Vec::new(),
        loop_iters: FxHashMap::default(),
        frames: Vec::new(),
        state: IterState::Fresh,
    }
}

/// One alternative way out of a block during the DFS.
#[derive(Debug, Clone, Copy)]
struct PathAlt {
    /// Decision recorded when this alternative is taken.
    decision: Option<(StmtId, BranchChoice)>,
    /// Successor block.
    dest: BlockId,
    /// Loop whose iteration counter this alternative holds (LoopIterate arcs).
    loop_stmt: Option<StmtId>,
}

#[derive(Debug)]
struct PathFrame {
    alts: Vec<PathAlt>,
    /// Index of the currently applied alternative.
    applied: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IterState {
    Fresh,
    Running,
    Done,
}

/// Streaming depth-first enumerator over the paths of one region.
///
/// Created by [`region_path_iter`].  The enumeration order is identical to
/// [`enumerate_region_paths`]; pulling `k` paths costs `O(k · region depth)`
/// regardless of how many paths the region has in total.
#[derive(Debug)]
pub struct RegionPathIter<'c> {
    cfg: &'c Cfg,
    inside: FxHashSet<BlockId>,
    entry: BlockId,
    current: Vec<(StmtId, BranchChoice)>,
    loop_iters: FxHashMap<StmtId, u32>,
    frames: Vec<PathFrame>,
    state: IterState,
}

impl RegionPathIter<'_> {
    fn alts_for(&self, block: BlockId) -> Vec<PathAlt> {
        match &self.cfg.block(block).terminator {
            Terminator::Jump(next) => vec![PathAlt {
                decision: None,
                dest: *next,
                loop_stmt: None,
            }],
            Terminator::Return { exit } => vec![PathAlt {
                decision: None,
                dest: *exit,
                loop_stmt: None,
            }],
            Terminator::Halt => unreachable!("halt blocks terminate descent"),
            Terminator::Branch {
                stmt,
                then_dest,
                else_dest,
                ..
            } => match self.cfg.loop_bound(*stmt) {
                Some(bound) => {
                    let taken = self.loop_iters.get(stmt).copied().unwrap_or(0);
                    let mut alts = Vec::with_capacity(2);
                    if taken < bound {
                        alts.push(PathAlt {
                            decision: Some((*stmt, BranchChoice::LoopIterate)),
                            dest: *then_dest,
                            loop_stmt: Some(*stmt),
                        });
                    }
                    alts.push(PathAlt {
                        decision: Some((*stmt, BranchChoice::LoopExit)),
                        dest: *else_dest,
                        loop_stmt: None,
                    });
                    alts
                }
                None => vec![
                    PathAlt {
                        decision: Some((*stmt, BranchChoice::Then)),
                        dest: *then_dest,
                        loop_stmt: None,
                    },
                    PathAlt {
                        decision: Some((*stmt, BranchChoice::Else)),
                        dest: *else_dest,
                        loop_stmt: None,
                    },
                ],
            },
            Terminator::Switch {
                stmt,
                arms,
                default_dest,
                ..
            } => {
                let mut alts = Vec::with_capacity(arms.len() + 1);
                for (value, dest) in arms {
                    alts.push(PathAlt {
                        decision: Some((*stmt, BranchChoice::Case(*value))),
                        dest: *dest,
                        loop_stmt: None,
                    });
                }
                alts.push(PathAlt {
                    decision: Some((*stmt, BranchChoice::Default)),
                    dest: *default_dest,
                    loop_stmt: None,
                });
                alts
            }
        }
    }

    fn apply(&mut self, alt: PathAlt) {
        if let Some(d) = alt.decision {
            self.current.push(d);
        }
        if let Some(stmt) = alt.loop_stmt {
            *self.loop_iters.entry(stmt).or_insert(0) += 1;
        }
    }

    fn undo(&mut self, alt: PathAlt) {
        if alt.decision.is_some() {
            self.current.pop();
        }
        if let Some(stmt) = alt.loop_stmt {
            let iters = self.loop_iters.get_mut(&stmt).expect("applied loop arc");
            *iters -= 1;
        }
    }

    /// Descends from `block` applying first alternatives until a path
    /// completes (control leaves the region or halts).
    fn descend(&mut self, mut block: BlockId) -> PathSpec {
        loop {
            if !self.inside.contains(&block)
                || matches!(self.cfg.block(block).terminator, Terminator::Halt)
            {
                return PathSpec {
                    decisions: self.current.clone(),
                };
            }
            let alts = self.alts_for(block);
            let first = alts[0];
            self.frames.push(PathFrame { alts, applied: 0 });
            self.apply(first);
            block = first.dest;
        }
    }
}

impl Iterator for RegionPathIter<'_> {
    type Item = PathSpec;

    fn next(&mut self) -> Option<PathSpec> {
        match self.state {
            IterState::Done => None,
            IterState::Fresh => {
                self.state = IterState::Running;
                let entry = self.entry;
                Some(self.descend(entry))
            }
            IterState::Running => {
                // Backtrack to the deepest frame with an untried alternative.
                while let Some(top) = self.frames.len().checked_sub(1) {
                    let undo_alt = self.frames[top].alts[self.frames[top].applied];
                    let next_index = self.frames[top].applied + 1;
                    if next_index < self.frames[top].alts.len() {
                        let next_alt = self.frames[top].alts[next_index];
                        self.frames[top].applied = next_index;
                        self.undo(undo_alt);
                        self.apply(next_alt);
                        return Some(self.descend(next_alt.dest));
                    }
                    self.frames.pop();
                    self.undo(undo_alt);
                }
                self.state = IterState::Done;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_cfg;
    use tmg_minic::parse_function;
    use tmg_minic::value::InputVector;
    use tmg_minic::Interpreter;

    fn lowered(src: &str) -> crate::builder::LoweredFunction {
        build_cfg(&parse_function(src).expect("parse"))
    }

    #[test]
    fn straight_line_has_one_path() {
        let f = parse_function("void f() { a(); b(); }").expect("parse");
        assert_eq!(count_paths_block(&f.body), 1);
    }

    #[test]
    fn nested_ifs_multiply_and_add() {
        let f = parse_function(
            "void f(int a) { if (a) { if (a > 1) { x(); } else { y(); } } if (a) { z(); } }",
        )
        .expect("parse");
        // Outer if: 2 (inner) + 1 (skip) = 3; second if: 2; total 6.
        assert_eq!(count_paths_block(&f.body), 6);
    }

    #[test]
    fn switch_adds_arm_paths() {
        let f = parse_function(
            "void f(int s) { switch (s) { case 0: if (s) { a(); } break; case 1: break; } }",
        )
        .expect("parse");
        // case 0: 2, case 1: 1, implicit default: 1 → 4.
        assert_eq!(count_paths_block(&f.body), 4);
    }

    #[test]
    fn loop_paths_follow_geometric_series() {
        let f = parse_function(
            "void f(int n) { int i; i = 0; while (i < n) __bound(2) { if (i) { a(); } i = i + 1; } }",
        )
        .expect("parse");
        // Body has 2 paths; Σ_{k=0..2} 2^k = 7.
        assert_eq!(count_paths_block(&f.body), 7);
    }

    #[test]
    fn early_return_truncates_the_sequence() {
        let f = parse_function("int f(int a) { if (a) { return 1; } return 2; }").expect("parse");
        assert_eq!(count_paths_block(&f.body), 2);
    }

    #[test]
    fn enumeration_matches_count_for_figure1() {
        let l = lowered(
            r#"
            int main() {
                int i;
                printf1(); printf2();
                if (i == 0) { printf3(); if (i == 0) { printf4(); } else { printf5(); } }
                if (i == 0) { printf6(); printf7(); }
                printf8();
            }
            "#,
        );
        let paths = enumerate_region_paths(&l.cfg, l.regions.root(), 1000).expect("within cap");
        assert_eq!(paths.len() as u128, l.regions.root().path_count);
        assert_eq!(paths.len(), 6);
        // All paths are distinct.
        let unique: HashSet<_> = paths.iter().collect();
        assert_eq!(unique.len(), paths.len());
    }

    #[test]
    fn enumeration_respects_cap() {
        let l = lowered(
            "void f(int a, int b, int c) { if (a) { x(); } if (b) { y(); } if (c) { z(); } }",
        );
        assert!(enumerate_region_paths(&l.cfg, l.regions.root(), 4).is_none());
        assert_eq!(
            enumerate_region_paths(&l.cfg, l.regions.root(), 8)
                .expect("8 paths")
                .len(),
            8
        );
    }

    #[test]
    fn loop_enumeration_unrolls_to_bound() {
        let l = lowered("void f(int n) { int i; i = 0; while (i < n) __bound(2) { i = i + 1; } }");
        let paths = enumerate_region_paths(&l.cfg, l.regions.root(), 100).expect("paths");
        // 0, 1 or 2 iterations.
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn sub_region_paths_enumerate_locally() {
        let l = lowered("void f(int a) { if (a) { p1(); if (a > 1) { p2(); } } p3(); }");
        let then_id = l.regions.root().children[0];
        let then_region = l.regions.region(then_id);
        let paths = enumerate_region_paths(&l.cfg, then_region, 100).expect("paths");
        assert_eq!(paths.len() as u128, then_region.path_count);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn interpreter_trace_matches_exactly_one_enumerated_path() {
        let src = r#"
            int main(int i) {
                printf1(); printf2();
                if (i == 0) { printf3(); if (i == 0) { printf4(); } else { printf5(); } }
                if (i == 0) { printf6(); printf7(); }
                printf8();
            }
        "#;
        let f = parse_function(src).expect("parse");
        let program = tmg_minic::parse_program(src).expect("parse");
        let l = build_cfg(&f);
        let paths = enumerate_region_paths(&l.cfg, l.regions.root(), 100).expect("paths");
        for input in [0i64, 1, -3] {
            let out = Interpreter::new(&program)
                .run("main", &InputVector::new().with("i", input))
                .expect("run");
            let sig = out.trace.branch_signature();
            let matching = paths.iter().filter(|p| p.matches_trace(&sig)).count();
            assert_eq!(matching, 1, "input {input} must match exactly one path");
        }
    }

    #[test]
    fn path_spec_matches_trace_subsequence() {
        let p = PathSpec {
            decisions: vec![
                (StmtId(1), BranchChoice::Then),
                (StmtId(2), BranchChoice::Else),
            ],
        };
        let trace = vec![
            (StmtId(0), BranchChoice::Else),
            (StmtId(1), BranchChoice::Then),
            (StmtId(2), BranchChoice::Else),
        ];
        assert!(p.matches_trace(&trace));
        let wrong = vec![
            (StmtId(1), BranchChoice::Else),
            (StmtId(2), BranchChoice::Else),
        ];
        assert!(!p.matches_trace(&wrong));
        assert!(PathSpec::empty().matches_trace(&[]));
    }

    #[test]
    fn count_region_paths_matches_enumeration_everywhere() {
        let sources = [
            "void f() { a(); b(); }",
            "void f(int a) { if (a) { x(); } if (a > 1) { y(); } else { z(); } }",
            "void f(int s) { switch (s) { case 0: if (s) { a(); } break; case 1: break; } }",
            "void f(int n) { int i; i = 0; while (i < n) __bound(3) { if (i) { a(); } i = i + 1; } }",
            "int f(int a) { if (a) { return 1; } return 2; }",
        ];
        for src in sources {
            let l = lowered(src);
            let count = count_region_paths(&l.cfg, l.regions.root());
            let paths =
                enumerate_region_paths(&l.cfg, l.regions.root(), 100_000).expect("within cap");
            assert_eq!(count, paths.len() as u128, "{src}");
        }
    }

    #[test]
    fn cap_exceeded_returns_none_without_materialising() {
        // 2^40 paths: far beyond any cap, counted without enumeration.
        let mut src = String::from("void f(int a) {");
        for _ in 0..40 {
            src.push_str(" if (a) { x(); }");
        }
        src.push('}');
        let l = lowered(&src);
        assert_eq!(count_region_paths(&l.cfg, l.regions.root()), 1u128 << 40);
        assert!(enumerate_region_paths(&l.cfg, l.regions.root(), 1_000_000).is_none());
        // The streaming iterator still serves a prefix cheaply.
        let prefix: Vec<PathSpec> = region_path_iter(&l.cfg, l.regions.root()).take(5).collect();
        assert_eq!(prefix.len(), 5);
        assert_eq!(prefix[0].len(), 40, "first path takes every branch");
    }

    #[test]
    fn path_count_overflow_saturates() {
        // 2^130 paths overflow u128 and must saturate, not wrap or panic.
        let mut src = String::from("void f(int a) {");
        for _ in 0..130 {
            src.push_str(" if (a) { x(); }");
        }
        src.push('}');
        let l = lowered(&src);
        assert_eq!(count_region_paths(&l.cfg, l.regions.root()), u128::MAX);
        assert_eq!(l.regions.root().path_count, u128::MAX);
        assert!(enumerate_region_paths(&l.cfg, l.regions.root(), usize::MAX).is_none());
    }

    #[test]
    fn enumeration_order_is_deterministic_across_runs() {
        let src = r#"
            void f(int a, int s, int n) {
                int i;
                if (a) { x(); } else { y(); }
                switch (s) { case 0: c0(); break; case 4: c4(); break; default: d(); break; }
                i = 0;
                while (i < n) __bound(2) { i = i + 1; }
            }
        "#;
        let l = lowered(src);
        let first = enumerate_region_paths(&l.cfg, l.regions.root(), 1000).expect("paths");
        for _ in 0..3 {
            let again = enumerate_region_paths(&l.cfg, l.regions.root(), 1000).expect("paths");
            assert_eq!(first, again);
        }
        // The streaming iterator yields the identical sequence.
        let streamed: Vec<PathSpec> = region_path_iter(&l.cfg, l.regions.root()).collect();
        assert_eq!(first, streamed);
        // And a prefix pull matches the full enumeration's prefix.
        let prefix: Vec<PathSpec> = region_path_iter(&l.cfg, l.regions.root()).take(3).collect();
        assert_eq!(&first[..3], prefix.as_slice());
    }

    #[test]
    fn exact_cap_still_enumerates() {
        let l = lowered("void f(int a, int b) { if (a) { x(); } if (b) { y(); } }");
        assert_eq!(
            enumerate_region_paths(&l.cfg, l.regions.root(), 4)
                .expect("exactly 4")
                .len(),
            4
        );
        assert!(enumerate_region_paths(&l.cfg, l.regions.root(), 3).is_none());
    }

    #[test]
    fn path_spec_display_lists_decisions() {
        let p = PathSpec {
            decisions: vec![(StmtId(3), BranchChoice::Case(2))],
        };
        assert!(p.to_string().contains("s3"));
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }
}
