//! Path counting and bounded path enumeration.
//!
//! The paper's partitioning decision compares the number of paths inside a
//! program segment with the path bound `b`; the measurement phase then needs
//! the actual paths (as branch-decision sequences) so that test data forcing
//! each of them can be generated.

use crate::block::{BlockId, Terminator};
use crate::graph::Cfg;
use crate::regions::Region;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;
use tmg_minic::ast::{Block, Stmt, StmtId};
use tmg_minic::interp::BranchChoice;

/// One path through a program segment, identified by the ordered sequence of
/// branch decisions taken inside the segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PathSpec {
    /// Branch decisions in execution order.
    pub decisions: Vec<(StmtId, BranchChoice)>,
}

impl PathSpec {
    /// A path with no decisions (straight-line segment).
    pub fn empty() -> PathSpec {
        PathSpec::default()
    }

    /// Number of decisions along the path.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether the path makes no decisions.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Whether `trace_decisions` (the full branch signature of an execution)
    /// covers this path: the path's decisions must appear as a contiguous
    /// subsequence when the trace is restricted to the statements this path
    /// mentions.
    pub fn matches_trace(&self, trace_decisions: &[(StmtId, BranchChoice)]) -> bool {
        if self.decisions.is_empty() {
            return true;
        }
        let relevant: HashSet<StmtId> = self.decisions.iter().map(|(s, _)| *s).collect();
        let restricted: Vec<(StmtId, BranchChoice)> = trace_decisions
            .iter()
            .copied()
            .filter(|(s, _)| relevant.contains(s))
            .collect();
        if restricted.len() < self.decisions.len() {
            return false;
        }
        restricted
            .windows(self.decisions.len())
            .any(|w| w == self.decisions.as_slice())
    }
}

impl fmt::Display for PathSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (stmt, choice)) in self.decisions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{stmt}:{choice:?}")?;
        }
        write!(f, "]")
    }
}

/// Counts the distinct execution paths through a statement list, following
/// the abstract syntax:
///
/// * a sequence multiplies its children's counts,
/// * an `if` adds the counts of its branches (an absent `else` counts 1),
/// * a `switch` adds the counts of its arms (an absent `default` counts 1),
/// * a bounded loop contributes `Σ_{k=0..bound} paths(body)^k`,
/// * a `return` truncates the remainder of its sequence (so early returns
///   never inflate the count below what the CFG admits — they may still
///   over-approximate sibling statements, which is safe for partitioning).
///
/// All arithmetic saturates at `u128::MAX`.
pub fn count_paths_block(block: &Block) -> u128 {
    let mut total: u128 = 1;
    for stmt in &block.stmts {
        let s = count_paths_stmt(stmt);
        total = total.saturating_mul(s);
        if matches!(stmt, Stmt::Return { .. }) {
            break;
        }
    }
    total
}

fn count_paths_stmt(stmt: &Stmt) -> u128 {
    match stmt {
        Stmt::Assign { .. } | Stmt::Call { .. } | Stmt::Return { .. } => 1,
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            let then_paths = count_paths_block(then_branch);
            let else_paths = else_branch.as_ref().map(count_paths_block).unwrap_or(1);
            then_paths.saturating_add(else_paths)
        }
        Stmt::Switch { cases, default, .. } => {
            let mut total: u128 = default.as_ref().map(count_paths_block).unwrap_or(1);
            for case in cases {
                total = total.saturating_add(count_paths_block(&case.body));
            }
            total
        }
        Stmt::While { bound, body, .. } => {
            crate::builder::loop_path_count(count_paths_block(body), *bound)
        }
    }
}

/// Enumerates every path through `region`, as branch-decision sequences,
/// stopping (and returning `None`) if more than `cap` paths exist.
///
/// Loops are unrolled up to their declared bound.  The enumeration is
/// deterministic: `then` before `else`, cases in source order before
/// `default`, shorter loop iterations before longer ones.
pub fn enumerate_region_paths(cfg: &Cfg, region: &Region, cap: usize) -> Option<Vec<PathSpec>> {
    let inside: HashSet<BlockId> = region.blocks.iter().copied().collect();
    let mut paths = Vec::new();
    let mut current = Vec::new();
    let mut loop_iters: HashMap<StmtId, u32> = HashMap::new();
    let ok = walk(
        cfg,
        &inside,
        region.entry_block,
        &mut current,
        &mut loop_iters,
        &mut paths,
        cap,
    );
    if ok {
        Some(paths)
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn walk(
    cfg: &Cfg,
    inside: &HashSet<BlockId>,
    block: BlockId,
    current: &mut Vec<(StmtId, BranchChoice)>,
    loop_iters: &mut HashMap<StmtId, u32>,
    out: &mut Vec<PathSpec>,
    cap: usize,
) -> bool {
    if !inside.contains(&block) {
        // Left the region: one complete path.
        if out.len() >= cap {
            return false;
        }
        out.push(PathSpec {
            decisions: current.clone(),
        });
        return true;
    }
    match &cfg.block(block).terminator {
        Terminator::Jump(next) => walk(cfg, inside, *next, current, loop_iters, out, cap),
        Terminator::Return { exit } => walk(cfg, inside, *exit, current, loop_iters, out, cap),
        Terminator::Halt => {
            if out.len() >= cap {
                return false;
            }
            out.push(PathSpec {
                decisions: current.clone(),
            });
            true
        }
        Terminator::Branch {
            stmt,
            then_dest,
            else_dest,
            ..
        } => {
            let is_loop = cfg.loop_bound(*stmt).is_some();
            if is_loop {
                let bound = cfg.loop_bound(*stmt).unwrap_or(0);
                let taken = loop_iters.get(stmt).copied().unwrap_or(0);
                let mut ok = true;
                // Iterate (if the bound allows one more trip around).
                if taken < bound {
                    *loop_iters.entry(*stmt).or_insert(0) += 1;
                    current.push((*stmt, BranchChoice::LoopIterate));
                    ok &= walk(cfg, inside, *then_dest, current, loop_iters, out, cap);
                    current.pop();
                    *loop_iters.get_mut(stmt).expect("just inserted") -= 1;
                }
                // Exit the loop.
                current.push((*stmt, BranchChoice::LoopExit));
                ok &= walk(cfg, inside, *else_dest, current, loop_iters, out, cap);
                current.pop();
                ok
            } else {
                current.push((*stmt, BranchChoice::Then));
                let mut ok = walk(cfg, inside, *then_dest, current, loop_iters, out, cap);
                current.pop();
                current.push((*stmt, BranchChoice::Else));
                ok &= walk(cfg, inside, *else_dest, current, loop_iters, out, cap);
                current.pop();
                ok
            }
        }
        Terminator::Switch {
            stmt,
            arms,
            default_dest,
            ..
        } => {
            let mut ok = true;
            for (value, dest) in arms {
                current.push((*stmt, BranchChoice::Case(*value)));
                ok &= walk(cfg, inside, *dest, current, loop_iters, out, cap);
                current.pop();
            }
            current.push((*stmt, BranchChoice::Default));
            ok &= walk(cfg, inside, *default_dest, current, loop_iters, out, cap);
            current.pop();
            ok
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_cfg;
    use tmg_minic::parse_function;
    use tmg_minic::Interpreter;
    use tmg_minic::value::InputVector;

    fn lowered(src: &str) -> crate::builder::LoweredFunction {
        build_cfg(&parse_function(src).expect("parse"))
    }

    #[test]
    fn straight_line_has_one_path() {
        let f = parse_function("void f() { a(); b(); }").expect("parse");
        assert_eq!(count_paths_block(&f.body), 1);
    }

    #[test]
    fn nested_ifs_multiply_and_add() {
        let f = parse_function(
            "void f(int a) { if (a) { if (a > 1) { x(); } else { y(); } } if (a) { z(); } }",
        )
        .expect("parse");
        // Outer if: 2 (inner) + 1 (skip) = 3; second if: 2; total 6.
        assert_eq!(count_paths_block(&f.body), 6);
    }

    #[test]
    fn switch_adds_arm_paths() {
        let f = parse_function(
            "void f(int s) { switch (s) { case 0: if (s) { a(); } break; case 1: break; } }",
        )
        .expect("parse");
        // case 0: 2, case 1: 1, implicit default: 1 → 4.
        assert_eq!(count_paths_block(&f.body), 4);
    }

    #[test]
    fn loop_paths_follow_geometric_series() {
        let f = parse_function(
            "void f(int n) { int i; i = 0; while (i < n) __bound(2) { if (i) { a(); } i = i + 1; } }",
        )
        .expect("parse");
        // Body has 2 paths; Σ_{k=0..2} 2^k = 7.
        assert_eq!(count_paths_block(&f.body), 7);
    }

    #[test]
    fn early_return_truncates_the_sequence() {
        let f = parse_function("int f(int a) { if (a) { return 1; } return 2; }").expect("parse");
        assert_eq!(count_paths_block(&f.body), 2);
    }

    #[test]
    fn enumeration_matches_count_for_figure1() {
        let l = lowered(
            r#"
            int main() {
                int i;
                printf1(); printf2();
                if (i == 0) { printf3(); if (i == 0) { printf4(); } else { printf5(); } }
                if (i == 0) { printf6(); printf7(); }
                printf8();
            }
            "#,
        );
        let paths = enumerate_region_paths(&l.cfg, l.regions.root(), 1000).expect("within cap");
        assert_eq!(paths.len() as u128, l.regions.root().path_count);
        assert_eq!(paths.len(), 6);
        // All paths are distinct.
        let unique: HashSet<_> = paths.iter().collect();
        assert_eq!(unique.len(), paths.len());
    }

    #[test]
    fn enumeration_respects_cap() {
        let l = lowered(
            "void f(int a, int b, int c) { if (a) { x(); } if (b) { y(); } if (c) { z(); } }",
        );
        assert!(enumerate_region_paths(&l.cfg, l.regions.root(), 4).is_none());
        assert_eq!(
            enumerate_region_paths(&l.cfg, l.regions.root(), 8).expect("8 paths").len(),
            8
        );
    }

    #[test]
    fn loop_enumeration_unrolls_to_bound() {
        let l = lowered("void f(int n) { int i; i = 0; while (i < n) __bound(2) { i = i + 1; } }");
        let paths = enumerate_region_paths(&l.cfg, l.regions.root(), 100).expect("paths");
        // 0, 1 or 2 iterations.
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn sub_region_paths_enumerate_locally() {
        let l = lowered("void f(int a) { if (a) { p1(); if (a > 1) { p2(); } } p3(); }");
        let then_id = l.regions.root().children[0];
        let then_region = l.regions.region(then_id);
        let paths = enumerate_region_paths(&l.cfg, then_region, 100).expect("paths");
        assert_eq!(paths.len() as u128, then_region.path_count);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn interpreter_trace_matches_exactly_one_enumerated_path() {
        let src = r#"
            int main(int i) {
                printf1(); printf2();
                if (i == 0) { printf3(); if (i == 0) { printf4(); } else { printf5(); } }
                if (i == 0) { printf6(); printf7(); }
                printf8();
            }
        "#;
        let f = parse_function(src).expect("parse");
        let program = tmg_minic::parse_program(src).expect("parse");
        let l = build_cfg(&f);
        let paths = enumerate_region_paths(&l.cfg, l.regions.root(), 100).expect("paths");
        for input in [0i64, 1, -3] {
            let out = Interpreter::new(&program)
                .run("main", &InputVector::new().with("i", input))
                .expect("run");
            let sig = out.trace.branch_signature();
            let matching = paths.iter().filter(|p| p.matches_trace(&sig)).count();
            assert_eq!(matching, 1, "input {input} must match exactly one path");
        }
    }

    #[test]
    fn path_spec_matches_trace_subsequence() {
        let p = PathSpec {
            decisions: vec![(StmtId(1), BranchChoice::Then), (StmtId(2), BranchChoice::Else)],
        };
        let trace = vec![
            (StmtId(0), BranchChoice::Else),
            (StmtId(1), BranchChoice::Then),
            (StmtId(2), BranchChoice::Else),
        ];
        assert!(p.matches_trace(&trace));
        let wrong = vec![(StmtId(1), BranchChoice::Else), (StmtId(2), BranchChoice::Else)];
        assert!(!p.matches_trace(&wrong));
        assert!(PathSpec::empty().matches_trace(&[]));
    }

    #[test]
    fn path_spec_display_lists_decisions() {
        let p = PathSpec {
            decisions: vec![(StmtId(3), BranchChoice::Case(2))],
        };
        assert!(p.to_string().contains("s3"));
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }
}
