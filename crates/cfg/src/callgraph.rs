//! Module-level call graph over the *defined* functions of a program.
//!
//! Interprocedural WCET composition (`tmg_core::module`) analyses a module
//! bottom-up: every function is bounded after its callees, so a callee's
//! bound artifact can price the caller's `call` statements.  This module
//! provides the graph that ordering and the differential re-analysis both
//! hang off:
//!
//! * nodes are the functions *defined* in the program, in program order;
//! * edges follow [`Stmt::Call`] resolution exactly as sema resolves it —
//!   a call whose callee name is defined in the same program is an edge,
//!   anything else is an external leaf routine and stays out of the graph;
//! * [`CallGraph::reverse_topological_order`] condenses the graph into
//!   strongly connected components (Tarjan) and refuses recursion — WCET
//!   composition needs an acyclic summary order, so any SCC with more than
//!   one node (or a self-loop) is reported as a typed [`CallGraphError`]
//!   naming the cycle;
//! * [`CallGraph::dirty_cone`] is the differential-invalidation primitive:
//!   the set of functions whose summary can change when a given set of
//!   functions is edited, i.e. the reverse-reachable closure of the edit.
//!
//! The graph itself is cheap (one AST walk), so the cached
//! `CallGraphArtifact` in the pipeline is memory-tier only — its value is
//! the stable [`CallGraph::key`] the per-function summary keys fold in.

use crate::hash::{combine_hashes, function_fingerprint, stable_hash_str};
use rustc_hash::FxHashMap;
use tmg_minic::ast::{Program, Stmt};

/// Recursion discovered while ordering the call graph: the functions of one
/// strongly connected component, in a deterministic order starting from the
/// lowest program index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallGraphError {
    /// The members of the offending cycle (one name for a self-loop).
    pub cycle: Vec<String>,
}

impl std::fmt::Display for CallGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recursive call cycle {{{}}} has no bottom-up summary order; \
             WCET composition requires an acyclic call graph",
            self.cycle.join(" -> ")
        )
    }
}

impl std::error::Error for CallGraphError {}

/// The call graph of one program's defined functions.  See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallGraph {
    names: Vec<String>,
    /// Deduplicated, sorted defined-callee indices per function.
    callees: Vec<Vec<usize>>,
    /// Reverse edges: the functions that call each function.
    callers: Vec<Vec<usize>>,
    /// `call` statements per function that resolve to a defined callee
    /// (before deduplication — two call sites to one callee count twice).
    call_sites: Vec<usize>,
    key: u64,
}

impl CallGraph {
    /// Builds the graph from a checked program.  Never fails: recursion is
    /// representable (and detected by [`Self::reverse_topological_order`]),
    /// calls to undefined names are external leaves and contribute no edge.
    pub fn build(program: &Program) -> CallGraph {
        let names: Vec<String> = program.functions.iter().map(|f| f.name.clone()).collect();
        let index: FxHashMap<&str, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
        let mut call_sites = vec![0usize; names.len()];
        for (i, function) in program.functions.iter().enumerate() {
            function.for_each_stmt(&mut |stmt| {
                if let Stmt::Call { callee, .. } = stmt {
                    if let Some(&j) = index.get(callee.as_str()) {
                        call_sites[i] += 1;
                        callees[i].push(j);
                    }
                }
            });
            callees[i].sort_unstable();
            callees[i].dedup();
            for &j in &callees[i] {
                callers[j].push(i);
            }
        }
        let key = graph_key(program, &callees);
        CallGraph {
            names,
            callees,
            callers,
            call_sites,
            key,
        }
    }

    /// Number of defined functions (nodes).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the program defines no functions.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Function name of node `i` (program order).
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Node index of a function name, if defined.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Sorted, deduplicated defined callees of node `i`.
    pub fn callees(&self, i: usize) -> &[usize] {
        &self.callees[i]
    }

    /// The nodes that call node `i` (its direct reverse edges).
    pub fn callers(&self, i: usize) -> &[usize] {
        &self.callers[i]
    }

    /// Call statements in node `i` that resolve to defined callees
    /// (call *sites*, not distinct callees).
    pub fn call_sites(&self, i: usize) -> usize {
        self.call_sites[i]
    }

    /// Total defined-call edges (deduplicated per caller).
    pub fn edge_count(&self) -> usize {
        self.callees.iter().map(Vec::len).sum()
    }

    /// The nodes no defined function calls — the analysis roots.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.callers[i].is_empty())
            .collect()
    }

    /// Stable content key of the graph: the module fingerprint (every
    /// function's source fingerprint in program order) mixed with the edge
    /// structure.  Two programs share a key exactly when every function body
    /// and the resolved call structure are identical.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// A bottom-up summary order: every function appears after all of its
    /// callees.  Deterministic (lowest program index first among ready
    /// nodes).
    ///
    /// # Errors
    ///
    /// [`CallGraphError`] when the graph has a cycle (mutual recursion or a
    /// self-loop) — there is no bottom-up order to give.
    pub fn reverse_topological_order(&self) -> Result<Vec<usize>, CallGraphError> {
        if let Some(cycle) = self.find_cycle() {
            return Err(CallGraphError {
                cycle: cycle.into_iter().map(|i| self.names[i].clone()).collect(),
            });
        }
        // Kahn's algorithm on out-degree: a node is ready when all of its
        // callees are emitted.  A binary heap would be overkill — scanning
        // for the smallest ready index keeps the order deterministic and the
        // graph sizes here are module-scale, not fleet-scale.
        let n = self.len();
        let mut remaining: Vec<usize> = self.callees.iter().map(Vec::len).collect();
        let mut ready: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&next) = ready.iter().min() {
            ready.retain(|&i| i != next);
            order.push(next);
            for &caller in &self.callers[next] {
                remaining[caller] -= 1;
                if remaining[caller] == 0 {
                    ready.push(caller);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "acyclic graph must order every node");
        Ok(order)
    }

    /// Tarjan's SCC: the first component with more than one member, or a
    /// self-loop, reported in ascending program order.
    fn find_cycle(&self) -> Option<Vec<usize>> {
        let n = self.len();
        let mut state = TarjanState {
            index: vec![usize::MAX; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            cycle: None,
        };
        for v in 0..n {
            if state.index[v] == usize::MAX {
                self.tarjan(v, &mut state);
                if state.cycle.is_some() {
                    break;
                }
            }
        }
        state.cycle
    }

    fn tarjan(&self, v: usize, s: &mut TarjanState) {
        // Explicit work-stack DFS: generated modules can chain hundreds of
        // calls deep, which would overflow a recursive walk's thread stack.
        enum Frame {
            Enter(usize),
            Resume(usize, usize),
        }
        let mut work = vec![Frame::Enter(v)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    s.index[v] = s.next_index;
                    s.lowlink[v] = s.next_index;
                    s.next_index += 1;
                    s.stack.push(v);
                    s.on_stack[v] = true;
                    work.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut edge) => {
                    let mut descended = false;
                    while edge < self.callees[v].len() {
                        let w = self.callees[v][edge];
                        edge += 1;
                        if s.index[w] == usize::MAX {
                            work.push(Frame::Resume(v, edge));
                            work.push(Frame::Enter(w));
                            descended = true;
                            break;
                        }
                        if s.on_stack[w] {
                            s.lowlink[v] = s.lowlink[v].min(s.index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if s.lowlink[v] == s.index[v] {
                        let mut component = Vec::new();
                        while let Some(w) = s.stack.pop() {
                            s.on_stack[w] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        let self_loop =
                            component.len() == 1 && self.callees[v].binary_search(&v).is_ok();
                        if component.len() > 1 || self_loop {
                            component.sort_unstable();
                            s.cycle = Some(component);
                            return;
                        }
                    }
                    if let Some(Frame::Resume(parent, _)) = work.last() {
                        s.lowlink[*parent] = s.lowlink[*parent].min(s.lowlink[v]);
                    }
                }
            }
        }
    }

    /// The dirty cone of an edit: every function from which a member of
    /// `changed` is reachable along call edges — the changed functions
    /// themselves plus all transitive callers.  Sorted ascending; indices
    /// out of range are ignored.  Exactly these summaries can differ after
    /// the edit; everything outside the cone is served unchanged.
    pub fn dirty_cone(&self, changed: &[usize]) -> Vec<usize> {
        let mut dirty = vec![false; self.len()];
        let mut work: Vec<usize> = changed
            .iter()
            .copied()
            .filter(|&i| i < self.len())
            .collect();
        for &i in &work {
            dirty[i] = true;
        }
        while let Some(i) = work.pop() {
            for &caller in &self.callers[i] {
                if !dirty[caller] {
                    dirty[caller] = true;
                    work.push(caller);
                }
            }
        }
        (0..self.len()).filter(|&i| dirty[i]).collect()
    }
}

struct TarjanState {
    index: Vec<usize>,
    lowlink: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<usize>,
    next_index: usize,
    cycle: Option<Vec<usize>>,
}

/// Stable fingerprint of a whole module: every function's source
/// fingerprint, in program order.  This is the cache key of the
/// `CallGraphArtifact` — any edit to any function (or a reorder) changes it.
pub fn module_fingerprint(program: &Program) -> u64 {
    let parts: Vec<u64> = program.functions.iter().map(function_fingerprint).collect();
    combine_hashes(&parts)
}

fn graph_key(program: &Program, callees: &[Vec<usize>]) -> u64 {
    let mut parts = vec![module_fingerprint(program)];
    for (i, edges) in callees.iter().enumerate() {
        parts.push(stable_hash_str(&program.functions[i].name));
        parts.push(combine_hashes(
            &edges.iter().map(|&j| j as u64).collect::<Vec<u64>>(),
        ));
    }
    combine_hashes(&parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_minic::parse_program;

    fn graph(source: &str) -> CallGraph {
        CallGraph::build(&parse_program(source).expect("parse"))
    }

    #[test]
    fn resolves_defined_edges_and_ignores_leaves() {
        let g = graph(
            "void leaf_user() { external(); } \
             void mid() { leaf_user(); external(); leaf_user(); } \
             void root() { mid(); leaf_user(); }",
        );
        assert_eq!(g.len(), 3);
        assert_eq!(g.callees(0), &[] as &[usize]);
        assert_eq!(g.callees(1), &[0], "dedup two call sites to one edge");
        assert_eq!(g.call_sites(1), 2, "but count both call sites");
        assert_eq!(g.callees(2), &[0, 1]);
        assert_eq!(g.callers(0), &[1, 2]);
        assert_eq!(g.roots(), vec![2]);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn reverse_topological_order_puts_callees_first() {
        let g =
            graph("void a() { b(); c(); } void b() { c(); } void c() { x(); } void d() { a(); }");
        let order = g.reverse_topological_order().expect("acyclic");
        let pos = |name: &str| {
            let i = g.index_of(name).unwrap();
            order.iter().position(|&n| n == i).unwrap()
        };
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
        assert!(pos("a") < pos("d"));
    }

    #[test]
    fn mutual_recursion_is_a_typed_error() {
        let g = graph("void even() { odd(); } void odd() { even(); } void top() { even(); }");
        let err = g.reverse_topological_order().expect_err("cycle");
        assert_eq!(err.cycle, vec!["even".to_owned(), "odd".to_owned()]);
        assert!(err.to_string().contains("recursive call cycle"));
    }

    #[test]
    fn self_recursion_is_a_typed_error() {
        let g = graph("void loop_fn() { loop_fn(); }");
        let err = g.reverse_topological_order().expect_err("self-loop");
        assert_eq!(err.cycle, vec!["loop_fn".to_owned()]);
    }

    #[test]
    fn dirty_cone_is_the_reverse_reachable_closure() {
        // root -> mid -> leaf;  side -> leaf;  lone
        let g = graph(
            "void leaf() { x(); } void mid() { leaf(); } void root() { mid(); } \
             void side() { leaf(); } void lone() { y(); }",
        );
        let (leaf, mid, root, side, lone) = (0, 1, 2, 3, 4);
        assert_eq!(g.dirty_cone(&[leaf]), vec![leaf, mid, root, side]);
        assert_eq!(g.dirty_cone(&[mid]), vec![mid, root]);
        assert_eq!(g.dirty_cone(&[root]), vec![root]);
        assert_eq!(g.dirty_cone(&[lone]), vec![lone]);
        assert_eq!(g.dirty_cone(&[side, mid]), vec![mid, root, side]);
        assert_eq!(g.dirty_cone(&[]), Vec::<usize>::new());
    }

    #[test]
    fn key_tracks_bodies_and_structure() {
        let base = graph("void a() { b(); } void b() { x(); }");
        let same = graph("void a() { b(); } void b() { x(); }");
        let edited_body = graph("void a() { b(); } void b() { y(); }");
        let new_edge = graph("void a() { b(); b(); } void b() { x(); }");
        assert_eq!(base.key(), same.key());
        assert_ne!(base.key(), edited_body.key());
        assert_ne!(base.key(), new_edge.key());
    }

    #[test]
    fn deep_call_chain_does_not_overflow_the_stack() {
        let mut source = String::from("void f0() { x(); } ");
        for i in 1..600 {
            source.push_str(&format!("void f{i}() {{ f{}(); }} ", i - 1));
        }
        let g = graph(&source);
        let order = g.reverse_topological_order().expect("acyclic chain");
        assert_eq!(order.len(), 600);
        assert_eq!(order[0], g.index_of("f0").unwrap());
        assert_eq!(g.dirty_cone(&[0]).len(), 600);
    }
}
