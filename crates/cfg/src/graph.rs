//! The control-flow graph container.

use crate::block::{BasicBlock, BlockId, BlockKind, Terminator};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use tmg_minic::ast::StmtId;

/// Control-flow graph of one analysed function.
///
/// Blocks are stored densely; [`BlockId`] indexes into the block table.  The
/// graph always contains one virtual [`BlockKind::Entry`] block and one
/// virtual [`BlockKind::Exit`] block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cfg {
    /// Name of the function this CFG was built from.
    pub function: String,
    blocks: Vec<BasicBlock>,
    entry: BlockId,
    exit: BlockId,
    preds: Vec<Vec<BlockId>>,
    loop_bounds: FxHashMap<StmtId, u32>,
}

impl Cfg {
    /// Assembles a CFG from parts; used by the builder and by the persistent
    /// artifact store when materialising a lowering artifact from disk.
    /// Predecessor lists are computed here, so a deserialized CFG is
    /// structurally identical to the originally built one.
    pub fn from_parts(
        function: String,
        blocks: Vec<BasicBlock>,
        entry: BlockId,
        exit: BlockId,
        loop_bounds: FxHashMap<StmtId, u32>,
    ) -> Cfg {
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); blocks.len()];
        for b in &blocks {
            for succ in b.terminator.successors() {
                preds[succ.index()].push(b.id);
            }
        }
        Cfg {
            function,
            blocks,
            entry,
            exit,
            preds,
            loop_bounds,
        }
    }

    /// The virtual entry block (the paper's `start` node).
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The virtual exit block (the paper's `end` node).
    pub fn exit(&self) -> BlockId {
        self.exit
    }

    /// Access a block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this CFG.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// All blocks in id order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Number of blocks including the virtual entry and exit.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Successors of a block.
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        self.block(id).terminator.successors()
    }

    /// Predecessors of a block.
    pub fn predecessors(&self, id: BlockId) -> &[BlockId] {
        &self.preds[id.index()]
    }

    /// Declared bound of the loop whose condition is statement `stmt`.
    pub fn loop_bound(&self, stmt: StmtId) -> Option<u32> {
        self.loop_bounds.get(&stmt).copied()
    }

    /// All loop bounds, keyed by the loop statement.
    pub fn loop_bounds(&self) -> &FxHashMap<StmtId, u32> {
        &self.loop_bounds
    }

    /// The *measurable units* of the CFG: every block except the virtual exit
    /// node.  For path bound `b = 1` the paper instruments each of these with
    /// two instrumentation points and measures each once, which is exactly how
    /// Table 1's `ip = 22`, `m = 11` for the 11-node Figure-1 CFG arise.
    pub fn measurable_units(&self) -> Vec<BlockId> {
        self.blocks
            .iter()
            .filter(|b| b.kind != BlockKind::Exit)
            .map(|b| b.id)
            .collect()
    }

    /// Blocks in reverse post-order from the entry (a topological-ish order
    /// that visits loop headers before their bodies).
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        self.dfs_post(self.entry, &mut visited, &mut post);
        post.reverse();
        post
    }

    fn dfs_post(&self, id: BlockId, visited: &mut [bool], post: &mut Vec<BlockId>) {
        if visited[id.index()] {
            return;
        }
        visited[id.index()] = true;
        for succ in self.successors(id) {
            self.dfs_post(succ, visited, post);
        }
        post.push(id);
    }

    /// Blocks reachable from the entry (every well-formed CFG should have all
    /// blocks reachable, but dead code elimination in generators may leave
    /// stragglers).
    pub fn reachable_blocks(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::new();
        self.dfs_post(self.entry, &mut visited, &mut post);
        post.sort_unstable();
        post
    }

    /// Number of conditional branch decisions (2-way branches count 1,
    /// `switch` terminators count `arms`, matching "conditional branches" in
    /// the paper's Section 2.3 statistics).
    pub fn conditional_branch_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| match &b.terminator {
                Terminator::Branch { .. } => 1,
                Terminator::Switch { arms, .. } => arms.len(),
                _ => 0,
            })
            .sum()
    }

    /// Consistency check used by tests and debug assertions: every successor
    /// and predecessor id is valid, the entry has no predecessors and the
    /// exit has no successors.
    pub fn validate(&self) -> Result<(), String> {
        for b in &self.blocks {
            for s in b.terminator.successors() {
                if s.index() >= self.blocks.len() {
                    return Err(format!("block {} has out-of-range successor {s}", b.id));
                }
            }
        }
        if !self.predecessors(self.entry).is_empty() {
            return Err("entry block has predecessors".to_owned());
        }
        if !self.successors(self.exit).is_empty() {
            return Err("exit block has successors".to_owned());
        }
        if self.block(self.entry).kind != BlockKind::Entry {
            return Err("entry block has wrong kind".to_owned());
        }
        if self.block(self.exit).kind != BlockKind::Exit {
            return Err("exit block has wrong kind".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_cfg;
    use tmg_minic::parse_function;

    fn lower(src: &str) -> Cfg {
        build_cfg(&parse_function(src).expect("parse")).cfg
    }

    #[test]
    fn straight_line_code_is_one_block_plus_entry_exit() {
        let cfg = lower("void f() { a1(); a2(); a3(); }");
        assert_eq!(cfg.block_count(), 3);
        assert_eq!(cfg.measurable_units().len(), 2);
        cfg.validate().expect("valid");
    }

    #[test]
    fn predecessors_and_successors_are_consistent() {
        let cfg = lower("void f(int a) { if (a) { x1(); } else { x2(); } x3(); }");
        cfg.validate().expect("valid");
        for b in cfg.blocks() {
            for s in cfg.successors(b.id) {
                assert!(cfg.predecessors(s).contains(&b.id));
            }
        }
    }

    #[test]
    fn reverse_postorder_starts_at_entry_and_covers_reachable_blocks() {
        let cfg = lower("void f(int a) { if (a) { x1(); } x2(); }");
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], cfg.entry());
        assert_eq!(rpo.len(), cfg.reachable_blocks().len());
    }

    #[test]
    fn conditional_branch_count_counts_switch_arms() {
        let cfg = lower(
            "void f(int s) { switch (s) { case 0: a0(); break; case 1: a1(); break; default: d(); break; } }",
        );
        assert_eq!(cfg.conditional_branch_count(), 2);
        let cfg = lower("void f(int a) { if (a) { x(); } }");
        assert_eq!(cfg.conditional_branch_count(), 1);
    }

    #[test]
    fn loop_bounds_are_recorded() {
        let cfg = lower("void f(int n) { int i; i = 0; while (i < n) __bound(8) { i = i + 1; } }");
        assert_eq!(cfg.loop_bounds().len(), 1);
        let (stmt, bound) = cfg
            .loop_bounds()
            .iter()
            .next()
            .map(|(s, b)| (*s, *b))
            .expect("one loop");
        assert_eq!(bound, 8);
        assert_eq!(cfg.loop_bound(stmt), Some(8));
    }
}
