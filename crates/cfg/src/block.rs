//! Basic blocks and their terminators.

use serde::{Deserialize, Serialize};
use std::fmt;
use tmg_minic::ast::{Expr, Stmt, StmtId};

/// Identity of a basic block within one [`crate::Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Raw index into the CFG block table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Structural role of a block.  The role does not affect semantics, but it
/// makes reports and DOT dumps readable and lets tests assert the builder
/// policy (e.g. "every `if` produces an explicit join node").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// Virtual function-entry block (the paper's `start` node).
    Entry,
    /// Virtual function-exit block (the paper's `end` node).  Never measured.
    Exit,
    /// Ordinary straight-line code.
    Code,
    /// Join node materialised at the end of an `if`/`switch`/loop.
    Join,
    /// Loop header holding the loop condition.
    LoopHeader,
    /// Entry block of a `switch` case arm.
    CaseArm,
}

/// How control leaves a basic block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional transfer.
    Jump(BlockId),
    /// Two-way conditional branch produced by an `if` or loop condition.
    Branch {
        /// The AST statement the condition belongs to.
        stmt: StmtId,
        /// Condition expression (true ⇒ `then_dest`).
        cond: Expr,
        /// Destination when the condition is true.
        then_dest: BlockId,
        /// Destination when the condition is false.
        else_dest: BlockId,
    },
    /// Multi-way branch produced by a `switch`.
    Switch {
        /// The AST `switch` statement.
        stmt: StmtId,
        /// Selector expression.
        selector: Expr,
        /// `(label value, destination)` pairs in source order.
        arms: Vec<(i64, BlockId)>,
        /// Destination when no label matches.
        default_dest: BlockId,
    },
    /// Return from the function: control transfers to the exit block.
    Return {
        /// The exit block of the CFG.
        exit: BlockId,
    },
    /// Terminator of the virtual exit block.
    Halt,
}

impl Terminator {
    /// All successor block ids, in a deterministic order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(d) => vec![*d],
            Terminator::Branch {
                then_dest,
                else_dest,
                ..
            } => vec![*then_dest, *else_dest],
            Terminator::Switch {
                arms, default_dest, ..
            } => {
                let mut out: Vec<BlockId> = arms.iter().map(|(_, d)| *d).collect();
                out.push(*default_dest);
                out
            }
            Terminator::Return { exit } => vec![*exit],
            Terminator::Halt => Vec::new(),
        }
    }

    /// Whether this terminator is a conditional (multi-way) branch.
    pub fn is_branch(&self) -> bool {
        matches!(self, Terminator::Branch { .. } | Terminator::Switch { .. })
    }
}

/// A basic block: a maximal sequence of simple statements with a single
/// terminator.  Branch conditions live in the terminator of the block that
/// computes them (so `x = 1; if (c) ...` is one block, like the paper's
/// Figure 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Block identity.
    pub id: BlockId,
    /// Structural role.
    pub kind: BlockKind,
    /// Simple statements (assignments, external calls, returns) in order.
    pub stmts: Vec<Stmt>,
    /// Control transfer out of the block.
    pub terminator: Terminator,
    /// Source line of the first statement (0 if the block is synthetic), used
    /// to label nodes the way the paper's Figure 1 does.
    pub line: u32,
}

impl BasicBlock {
    /// Whether the block contains no statements (typical for join nodes).
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Ids of the statements contained in this block (not counting the
    /// terminator's branching statement).
    pub fn stmt_ids(&self) -> Vec<StmtId> {
        self.stmts.iter().map(|s| s.id()).collect()
    }

    /// The branching statement that terminates this block, if any.
    pub fn branch_stmt(&self) -> Option<StmtId> {
        match &self.terminator {
            Terminator::Branch { stmt, .. } | Terminator::Switch { stmt, .. } => Some(*stmt),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_minic::ast::Expr;

    #[test]
    fn successors_of_each_terminator_kind() {
        let jump = Terminator::Jump(BlockId(3));
        assert_eq!(jump.successors(), vec![BlockId(3)]);
        assert!(!jump.is_branch());

        let branch = Terminator::Branch {
            stmt: StmtId(0),
            cond: Expr::var("a"),
            then_dest: BlockId(1),
            else_dest: BlockId(2),
        };
        assert_eq!(branch.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(branch.is_branch());

        let switch = Terminator::Switch {
            stmt: StmtId(1),
            selector: Expr::var("s"),
            arms: vec![(0, BlockId(4)), (1, BlockId(5))],
            default_dest: BlockId(6),
        };
        assert_eq!(
            switch.successors(),
            vec![BlockId(4), BlockId(5), BlockId(6)]
        );

        assert_eq!(Terminator::Halt.successors(), Vec::<BlockId>::new());
        assert_eq!(
            Terminator::Return { exit: BlockId(9) }.successors(),
            vec![BlockId(9)]
        );
    }

    #[test]
    fn block_id_display() {
        assert_eq!(BlockId(4).to_string(), "b4");
        assert_eq!(BlockId(4).index(), 4);
    }

    #[test]
    fn empty_block_reports_no_statements() {
        let b = BasicBlock {
            id: BlockId(0),
            kind: BlockKind::Join,
            stmts: Vec::new(),
            terminator: Terminator::Jump(BlockId(1)),
            line: 0,
        };
        assert!(b.is_empty());
        assert!(b.stmt_ids().is_empty());
        assert_eq!(b.branch_stmt(), None);
    }
}
