//! Lowering of a checked mini-C [`Function`] into a [`Cfg`] plus its
//! [`RegionTree`].
//!
//! # Block-formation policy
//!
//! The builder follows the construction that reproduces the paper's Figure-1
//! CFG and Table 1:
//!
//! * branch conditions terminate the block that computes them (so
//!   `p1(); p2(); if (c) ...` is a single block, the paper's node "4");
//! * every `if` and `switch` materialises an explicit, always-empty *join*
//!   block;
//! * statements following a branching statement never merge into the join —
//!   they start a fresh block;
//! * loops get a dedicated header block holding the condition, a body region
//!   and an explicit loop-exit join;
//! * the virtual entry block counts as a measurable unit (the paper's `start`
//!   node), the virtual exit block does not.

use crate::block::{BasicBlock, BlockId, BlockKind, Terminator};
use crate::graph::Cfg;
use crate::paths::count_paths_block;
use crate::regions::{Region, RegionId, RegionKind, RegionTree};
use rustc_hash::FxHashMap;
use tmg_minic::ast::{Block, Expr, Function, Stmt, StmtId};

/// Result of lowering a function: the CFG and its program-segment regions.
#[derive(Debug, Clone)]
pub struct LoweredFunction {
    /// The control-flow graph.
    pub cfg: Cfg,
    /// The single-entry region tree used for partitioning.
    pub regions: RegionTree,
}

/// Lowers `function` (which must have passed semantic analysis, i.e. have
/// assigned statement ids) into a CFG and region tree.
///
/// # Example
///
/// ```
/// use tmg_minic::parse_function;
/// use tmg_cfg::build_cfg;
///
/// let f = parse_function("void f(int a) { if (a) { g(); } h(); }")?;
/// let lowered = build_cfg(&f);
/// assert!(lowered.cfg.validate().is_ok());
/// assert!(lowered.regions.validate(&lowered.cfg).is_ok());
/// # Ok::<(), tmg_minic::Error>(())
/// ```
pub fn build_cfg(function: &Function) -> LoweredFunction {
    Builder::new(function).build()
}

struct Builder<'f> {
    function: &'f Function,
    blocks: Vec<BasicBlock>,
    regions: Vec<Region>,
    region_stack: Vec<RegionId>,
    loop_bounds: FxHashMap<StmtId, u32>,
    exit: BlockId,
}

impl<'f> Builder<'f> {
    fn new(function: &'f Function) -> Builder<'f> {
        Builder {
            function,
            blocks: Vec::new(),
            regions: Vec::new(),
            region_stack: Vec::new(),
            loop_bounds: FxHashMap::default(),
            exit: BlockId(0),
        }
    }

    fn new_block(&mut self, kind: BlockKind, line: u32) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock {
            id,
            kind,
            stmts: Vec::new(),
            terminator: Terminator::Return { exit: self.exit },
            line,
        });
        for &r in &self.region_stack {
            self.regions[r.index()].blocks.push(id);
        }
        id
    }

    fn set_terminator(&mut self, block: BlockId, terminator: Terminator) {
        self.blocks[block.index()].terminator = terminator;
    }

    fn push_region(&mut self, kind: RegionKind, path_count: u128) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        let parent = self.region_stack.last().copied();
        self.regions.push(Region {
            id,
            kind,
            parent,
            children: Vec::new(),
            blocks: Vec::new(),
            entry_block: BlockId(0),
            path_count,
        });
        if let Some(p) = parent {
            self.regions[p.index()].children.push(id);
        }
        self.region_stack.push(id);
        id
    }

    fn pop_region(&mut self, id: RegionId, entry_block: BlockId) {
        let popped = self.region_stack.pop();
        debug_assert_eq!(popped, Some(id));
        self.regions[id.index()].entry_block = entry_block;
    }

    /// Returns a block that may receive statements or a branching terminator.
    /// Join blocks stay empty by policy, so writing to one first chains a
    /// fresh code block behind it.
    fn writable(&mut self, cur: BlockId, line: u32) -> BlockId {
        match self.blocks[cur.index()].kind {
            BlockKind::Join | BlockKind::Entry => {
                let fresh = self.new_block(BlockKind::Code, line);
                self.set_terminator(cur, Terminator::Jump(fresh));
                fresh
            }
            _ => cur,
        }
    }

    fn build(mut self) -> LoweredFunction {
        // The exit block is created first and belongs to no region.
        self.exit = self.new_block(BlockKind::Exit, 0);
        self.set_terminator(self.exit, Terminator::Halt);

        let root_paths = count_paths_block(&self.function.body);
        let root = self.push_region(RegionKind::FunctionBody, root_paths);

        let entry = self.new_block(BlockKind::Entry, 0);
        let first = self.new_block(BlockKind::Code, first_line(&self.function.body));
        self.set_terminator(entry, Terminator::Jump(first));

        let open = self.lower_block(&self.function.body, first);
        if let Some(open) = open {
            let exit = self.exit;
            self.set_terminator(open, Terminator::Return { exit });
        }
        self.pop_region(root, entry);

        let cfg = Cfg::from_parts(
            self.function.name.clone(),
            self.blocks,
            entry,
            self.exit,
            self.loop_bounds,
        );
        debug_assert!(cfg.validate().is_ok(), "builder produced an invalid CFG");
        let regions = RegionTree::from_parts(self.regions, root);
        LoweredFunction { cfg, regions }
    }

    /// Lowers the statements of `block` starting in `cur`.  Returns the block
    /// in which control continues afterwards, or `None` if every path ended
    /// in a `return`.
    fn lower_block(&mut self, block: &Block, mut cur: BlockId) -> Option<BlockId> {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Assign { .. } | Stmt::Call { .. } => {
                    cur = self.writable(cur, stmt.line());
                    self.blocks[cur.index()].stmts.push(stmt.clone());
                }
                Stmt::Return { .. } => {
                    cur = self.writable(cur, stmt.line());
                    self.blocks[cur.index()].stmts.push(stmt.clone());
                    let exit = self.exit;
                    self.set_terminator(cur, Terminator::Return { exit });
                    // Statements after a return are unreachable and dropped.
                    return None;
                }
                Stmt::If {
                    id,
                    line,
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    cur = self.lower_if(cur, *id, *line, cond, then_branch, else_branch.as_ref());
                }
                Stmt::Switch {
                    id,
                    line,
                    selector,
                    cases,
                    default,
                } => {
                    cur = self.lower_switch(cur, *id, *line, selector, cases, default.as_ref());
                }
                Stmt::While {
                    id,
                    line,
                    cond,
                    bound,
                    body,
                } => {
                    cur = self.lower_while(cur, *id, *line, cond, *bound, body);
                }
            }
        }
        Some(cur)
    }

    fn lower_if(
        &mut self,
        cur: BlockId,
        id: StmtId,
        line: u32,
        cond: &Expr,
        then_branch: &Block,
        else_branch: Option<&Block>,
    ) -> BlockId {
        let cur = self.writable(cur, line);
        // The join belongs to the *enclosing* regions, not to either branch.
        let join = self.new_block(BlockKind::Join, line);

        let then_region = self.push_region(RegionKind::Then(id), count_paths_block(then_branch));
        let then_entry = self.new_block(BlockKind::Code, first_line(then_branch));
        if let Some(open) = self.lower_block(then_branch, then_entry) {
            self.set_terminator(open, Terminator::Jump(join));
        }
        self.pop_region(then_region, then_entry);

        let else_dest = match else_branch {
            Some(else_block) => {
                let else_region =
                    self.push_region(RegionKind::Else(id), count_paths_block(else_block));
                let else_entry = self.new_block(BlockKind::Code, first_line(else_block));
                if let Some(open) = self.lower_block(else_block, else_entry) {
                    self.set_terminator(open, Terminator::Jump(join));
                }
                self.pop_region(else_region, else_entry);
                else_entry
            }
            None => join,
        };

        self.set_terminator(
            cur,
            Terminator::Branch {
                stmt: id,
                cond: cond.clone(),
                then_dest: then_entry,
                else_dest,
            },
        );
        join
    }

    fn lower_switch(
        &mut self,
        cur: BlockId,
        id: StmtId,
        line: u32,
        selector: &Expr,
        cases: &[tmg_minic::ast::SwitchCase],
        default: Option<&Block>,
    ) -> BlockId {
        let cur = self.writable(cur, line);
        let join = self.new_block(BlockKind::Join, line);

        let mut arms = Vec::with_capacity(cases.len());
        for case in cases {
            let region = self.push_region(
                RegionKind::Case(id, case.value),
                count_paths_block(&case.body),
            );
            let arm_entry = self.new_block(BlockKind::CaseArm, first_line(&case.body));
            if let Some(open) = self.lower_block(&case.body, arm_entry) {
                self.set_terminator(open, Terminator::Jump(join));
            }
            self.pop_region(region, arm_entry);
            arms.push((case.value, arm_entry));
        }

        let default_dest = match default {
            Some(body) => {
                let region = self.push_region(RegionKind::Default(id), count_paths_block(body));
                let arm_entry = self.new_block(BlockKind::CaseArm, first_line(body));
                if let Some(open) = self.lower_block(body, arm_entry) {
                    self.set_terminator(open, Terminator::Jump(join));
                }
                self.pop_region(region, arm_entry);
                arm_entry
            }
            None => join,
        };

        self.set_terminator(
            cur,
            Terminator::Switch {
                stmt: id,
                selector: selector.clone(),
                arms,
                default_dest,
            },
        );
        join
    }

    fn lower_while(
        &mut self,
        cur: BlockId,
        id: StmtId,
        line: u32,
        cond: &Expr,
        bound: u32,
        body: &Block,
    ) -> BlockId {
        let header = self.new_block(BlockKind::LoopHeader, line);
        self.set_terminator(cur, Terminator::Jump(header));
        self.loop_bounds.insert(id, bound);

        let body_paths = count_paths_block(body);
        // Paths through the whole loop: Σ_{k=0..bound} body_paths^k.
        let region_paths = loop_path_count(body_paths, bound);
        let region = self.push_region(RegionKind::LoopBody(id), region_paths);
        let body_entry = self.new_block(BlockKind::Code, first_line(body));
        if let Some(open) = self.lower_block(body, body_entry) {
            self.set_terminator(open, Terminator::Jump(header));
        }
        self.pop_region(region, body_entry);

        let after = self.new_block(BlockKind::Join, line);
        self.set_terminator(
            header,
            Terminator::Branch {
                stmt: id,
                cond: cond.clone(),
                then_dest: body_entry,
                else_dest: after,
            },
        );
        after
    }
}

/// Number of distinct paths through a loop with the given per-iteration path
/// count and iteration bound: `Σ_{k=0..bound} body^k`, saturating.
pub(crate) fn loop_path_count(body_paths: u128, bound: u32) -> u128 {
    let mut total: u128 = 0;
    let mut power: u128 = 1;
    for _ in 0..=bound {
        total = total.saturating_add(power);
        power = power.saturating_mul(body_paths.max(1));
        if total == u128::MAX {
            break;
        }
    }
    total
}

fn first_line(block: &Block) -> u32 {
    block.stmts.first().map(|s| s.line()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockKind;
    use tmg_minic::parse_function;

    fn lower(src: &str) -> LoweredFunction {
        build_cfg(&parse_function(src).expect("parse"))
    }

    /// The Figure-1 example of the paper.
    fn figure1() -> LoweredFunction {
        lower(
            r#"
            int main() {
                int i;
                printf1();
                printf2();
                if (i == 0) {
                    printf3();
                    if (i == 0) { printf4(); } else { printf5(); }
                }
                if (i == 0) {
                    printf6();
                    printf7();
                }
                printf8();
            }
            "#,
        )
    }

    #[test]
    fn figure1_has_eleven_measurable_units() {
        let l = figure1();
        // The paper's Figure-1 CFG: `start` + 10 code/join nodes measured,
        // 2 * 11 = 22 instrumentation points at path bound 1 (Table 1).
        assert_eq!(l.cfg.measurable_units().len(), 11);
        l.cfg.validate().expect("valid cfg");
        l.regions.validate(&l.cfg).expect("valid regions");
    }

    #[test]
    fn figure1_root_region_has_six_paths() {
        let l = figure1();
        assert_eq!(l.regions.root().path_count, 6);
    }

    #[test]
    fn figure1_outer_then_branch_has_four_blocks_and_two_paths() {
        let l = figure1();
        let root = l.regions.root();
        // Children of the root: Then(outer if), Then(second if).
        let then_regions: Vec<_> = root.children.iter().map(|c| l.regions.region(*c)).collect();
        assert_eq!(then_regions.len(), 2);
        let outer = then_regions[0];
        assert_eq!(
            outer.block_count(),
            4,
            "printf3+cond, printf4, printf5, inner join"
        );
        assert_eq!(outer.path_count, 2);
        let second = then_regions[1];
        assert_eq!(second.block_count(), 1);
        assert_eq!(second.path_count, 1);
    }

    #[test]
    fn conditions_merge_into_preceding_block() {
        let l = lower("void f(int a) { p1(); p2(); if (a) { p3(); } }");
        // entry -> [p1,p2,branch] -> then/join
        let entry_succ = l.cfg.successors(l.cfg.entry())[0];
        let first = l.cfg.block(entry_succ);
        assert_eq!(first.stmts.len(), 2);
        assert!(first.terminator.is_branch());
    }

    #[test]
    fn join_blocks_stay_empty() {
        let l = figure1();
        for b in l.cfg.blocks() {
            if b.kind == BlockKind::Join {
                assert!(b.is_empty(), "join {} must stay empty", b.id);
            }
        }
    }

    #[test]
    fn return_ends_the_block_and_drops_dead_code() {
        let l = lower("int f(int a) { if (a) { return 1; } return 2; }");
        l.cfg.validate().expect("valid");
        // Both return blocks flow to the exit.
        let exit_preds = l.cfg.predecessors(l.cfg.exit());
        assert_eq!(exit_preds.len(), 2);
    }

    #[test]
    fn while_loop_creates_header_body_and_exit_join() {
        let l = lower(
            "void f(int n) { int i; i = 0; while (i < n) __bound(3) { i = i + 1; } done(); }",
        );
        let kinds: Vec<BlockKind> = l.cfg.blocks().iter().map(|b| b.kind).collect();
        assert!(kinds.contains(&BlockKind::LoopHeader));
        // Back edge: the loop header has two predecessors (preheader + body).
        let header = l
            .cfg
            .blocks()
            .iter()
            .find(|b| b.kind == BlockKind::LoopHeader)
            .expect("header");
        assert_eq!(l.cfg.predecessors(header.id).len(), 2);
        // Loop region paths: Σ_{k=0..3} 1 = 4.
        let loop_region = l
            .regions
            .regions()
            .iter()
            .find(|r| matches!(r.kind, RegionKind::LoopBody(_)))
            .expect("loop region");
        assert_eq!(loop_region.path_count, 4);
    }

    #[test]
    fn switch_produces_one_arm_block_per_case() {
        let l = lower(
            "void f(int s) { switch (s) { case 0: a0(); break; case 1: break; default: d(); break; } done(); }",
        );
        let arm_count = l
            .cfg
            .blocks()
            .iter()
            .filter(|b| b.kind == BlockKind::CaseArm)
            .count();
        assert_eq!(arm_count, 3);
        assert_eq!(l.regions.root().path_count, 3);
    }

    #[test]
    fn empty_then_branch_still_forms_a_block() {
        let l = lower("void f(int a) { if (a) { } p(); }");
        let root = l.regions.root();
        let then_region = l.regions.region(root.children[0]);
        assert_eq!(then_region.block_count(), 1);
        assert_eq!(then_region.path_count, 1);
    }

    #[test]
    fn loop_path_count_saturates() {
        assert_eq!(loop_path_count(1, 3), 4);
        assert_eq!(loop_path_count(2, 3), 1 + 2 + 4 + 8);
        assert_eq!(loop_path_count(u128::MAX, 4), u128::MAX);
    }

    #[test]
    fn statements_after_a_branch_start_a_new_block() {
        let l = lower("void f(int a) { if (a) { p1(); } p2(); }");
        // The block holding p2 must be distinct from the if's join.
        let p2_block = l
            .cfg
            .blocks()
            .iter()
            .find(|b| {
                b.stmts
                    .iter()
                    .any(|s| matches!(s, Stmt::Call { callee, .. } if callee == "p2"))
            })
            .expect("p2 block");
        assert_eq!(p2_block.kind, BlockKind::Code);
    }
}
