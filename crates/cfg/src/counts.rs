//! Reusable per-region path-count artifact.
//!
//! Partitioning decisions (`tmg_core::partition`) and the Figure-2/3
//! tradeoff sweep both compare region path counts against a path bound `b`.
//! The counts themselves are fixed by the lowered function — only the bound
//! varies — so they are extracted once into a [`PathCounts`] value that can
//! be cached alongside the CFG and queried for any bound without touching
//! block lists again.  [`PathCounts::partition_stats`] answers the paper's
//! `(segments, ip, m)` statistics for one bound in a single region-tree walk
//! with no allocation; the incremental sweep in `tmg_core::tradeoff` derives
//! a whole bound sweep from the same data.

use crate::builder::LoweredFunction;
use crate::regions::RegionId;

/// The `(segments, measurements)` statistics of a partition at one bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionStats {
    /// Number of program segments.
    pub segments: usize,
    /// Number of measurements `m` (one per segment path, saturating).
    pub measurements: u128,
}

impl PartitionStats {
    /// Instrumentation points `ip`: two per segment, as Table 1 counts them.
    pub fn instrumentation_points(&self) -> usize {
        self.segments * 2
    }
}

/// Per-region path counts and own-block counts of one lowered function.
///
/// `own_blocks(r)` is the number of blocks belonging to `r` but to none of
/// its children — the blocks instrumented individually when `r` is
/// decomposed.  Region ids are the pre-order ids of the source
/// [`RegionTree`](crate::regions::RegionTree), so a parent's id is always
/// smaller than its children's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathCounts {
    root: RegionId,
    parent: Vec<Option<RegionId>>,
    children: Vec<Vec<RegionId>>,
    path_count: Vec<u128>,
    own_blocks: Vec<u32>,
}

impl PathCounts {
    /// Extracts the counts from a lowered function in one pass over the
    /// region tree.
    pub fn compute(lowered: &LoweredFunction) -> PathCounts {
        let regions = lowered.regions.regions();
        let mut parent = Vec::with_capacity(regions.len());
        let mut children = Vec::with_capacity(regions.len());
        let mut path_count = Vec::with_capacity(regions.len());
        let mut own_blocks = Vec::with_capacity(regions.len());
        for region in regions {
            parent.push(region.parent);
            children.push(region.children.clone());
            path_count.push(region.path_count);
            // Children partition a strict subset of the parent's blocks, so
            // the own-block count is a subtraction instead of a set build.
            let nested: usize = region
                .children
                .iter()
                .map(|c| lowered.regions.region(*c).block_count())
                .sum();
            own_blocks.push((region.block_count() - nested) as u32);
        }
        PathCounts {
            root: lowered.regions.root_id(),
            parent,
            children,
            path_count,
            own_blocks,
        }
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.path_count.len()
    }

    /// Whether the function has no regions (never true for a built function).
    pub fn is_empty(&self) -> bool {
        self.path_count.is_empty()
    }

    /// Id of the root (function-body) region.
    pub fn root_id(&self) -> RegionId {
        self.root
    }

    /// Parent of a region (`None` for the root).
    pub fn parent(&self, id: RegionId) -> Option<RegionId> {
        self.parent[id.index()]
    }

    /// Directly nested regions in source order.
    pub fn children(&self, id: RegionId) -> &[RegionId] {
        &self.children[id.index()]
    }

    /// Number of paths through the region (saturating).
    pub fn path_count(&self, id: RegionId) -> u128 {
        self.path_count[id.index()]
    }

    /// Blocks owned by the region alone (excluding children's blocks).
    pub fn own_block_count(&self, id: RegionId) -> u32 {
        self.own_blocks[id.index()]
    }

    /// The partition statistics at path bound `bound`, computed by the same
    /// recursion as `PartitionPlan::compute` but over the counts alone: a
    /// region within the bound is one segment with `path_count` paths;
    /// otherwise its children are visited and its own blocks become
    /// single-block segments of one path each.
    pub fn partition_stats(&self, bound: u128) -> PartitionStats {
        let mut stats = PartitionStats {
            segments: 0,
            measurements: 0,
        };
        self.stats_from(self.root, bound, &mut stats);
        stats
    }

    fn stats_from(&self, id: RegionId, bound: u128, stats: &mut PartitionStats) {
        let i = id.index();
        if self.path_count[i] <= bound {
            stats.segments += 1;
            stats.measurements = stats.measurements.saturating_add(self.path_count[i]);
            return;
        }
        for &child in &self.children[i] {
            self.stats_from(child, bound, stats);
        }
        let own = self.own_blocks[i] as usize;
        stats.segments += own;
        stats.measurements = stats.measurements.saturating_add(own as u128);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_cfg;
    use tmg_minic::parse_function;

    fn counts(src: &str) -> (LoweredFunction, PathCounts) {
        let lowered = build_cfg(&parse_function(src).expect("parse"));
        let counts = PathCounts::compute(&lowered);
        (lowered, counts)
    }

    #[test]
    fn own_block_counts_match_the_region_tree() {
        let sources = [
            "void f(int a) { p1(); if (a) { p2(); } else { p3(); } p4(); }",
            "void f(int a) { if (a) { if (a > 1) { x(); } else { y(); } } z(); }",
            "void f(int s) { switch (s) { case 0: a0(); break; case 1: a1(); break; default: d(); break; } }",
            "void f(int n) { int i; i = 0; while (i < n) __bound(2) { if (i) { a(); } i = i + 1; } }",
        ];
        for src in sources {
            let (lowered, counts) = counts(src);
            for region in lowered.regions.regions() {
                assert_eq!(
                    counts.own_block_count(region.id) as usize,
                    lowered.regions.own_blocks(region.id).len(),
                    "{src}: region {}",
                    region.id
                );
                assert_eq!(counts.path_count(region.id), region.path_count);
                assert_eq!(counts.parent(region.id), region.parent);
                assert_eq!(counts.children(region.id), region.children.as_slice());
            }
            assert_eq!(counts.len(), lowered.regions.len());
            assert!(!counts.is_empty());
        }
    }

    #[test]
    fn partition_stats_reproduce_table1_numbers() {
        // The Figure-1 example's Table-1 rows, without building a single
        // PartitionPlan.
        let (_, counts) = counts(
            r#"
            int main() {
                int i;
                printf1(); printf2();
                if (i == 0) { printf3(); if (i == 0) { printf4(); } else { printf5(); } }
                if (i == 0) { printf6(); printf7(); }
                printf8();
            }
            "#,
        );
        let expected: [(u128, usize, u128); 4] = [(1, 22, 11), (2, 16, 9), (6, 2, 6), (7, 2, 6)];
        for (bound, ip, m) in expected {
            let stats = counts.partition_stats(bound);
            assert_eq!(
                (stats.instrumentation_points(), stats.measurements),
                (ip, m),
                "bound {bound}"
            );
        }
    }
}
