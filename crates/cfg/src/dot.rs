//! Graphviz (DOT) export of control-flow graphs, mirroring the paper's
//! Figure-1 style: nodes are labelled with the source line of their first
//! statement.

use crate::block::{BlockKind, Terminator};
use crate::graph::Cfg;
use std::fmt::Write;

/// Renders `cfg` as a Graphviz `digraph`.
///
/// # Example
///
/// ```
/// use tmg_minic::parse_function;
/// use tmg_cfg::{build_cfg, dot::to_dot};
///
/// let f = parse_function("void f(int a) { if (a) { g(); } }")?;
/// let lowered = build_cfg(&f);
/// let dot = to_dot(&lowered.cfg);
/// assert!(dot.starts_with("digraph"));
/// # Ok::<(), tmg_minic::Error>(())
/// ```
pub fn to_dot(cfg: &Cfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", cfg.function);
    let _ = writeln!(out, "    node [shape=ellipse, fontsize=10];");
    for block in cfg.blocks() {
        let label = match block.kind {
            BlockKind::Entry => "start".to_owned(),
            BlockKind::Exit => "end".to_owned(),
            _ => {
                if block.line > 0 {
                    block.line.to_string()
                } else {
                    format!("{}", block.id)
                }
            }
        };
        let shape = match block.kind {
            BlockKind::Entry | BlockKind::Exit => ", shape=box",
            BlockKind::Join => ", shape=point, width=0.12",
            _ => "",
        };
        let _ = writeln!(out, "    {} [label=\"{label}\"{shape}];", block.id.0);
    }
    for block in cfg.blocks() {
        match &block.terminator {
            Terminator::Branch {
                then_dest,
                else_dest,
                ..
            } => {
                let _ = writeln!(out, "    {} -> {} [label=\"T\"];", block.id.0, then_dest.0);
                let _ = writeln!(out, "    {} -> {} [label=\"F\"];", block.id.0, else_dest.0);
            }
            Terminator::Switch {
                arms, default_dest, ..
            } => {
                for (value, dest) in arms {
                    let _ = writeln!(out, "    {} -> {} [label=\"{value}\"];", block.id.0, dest.0);
                }
                let _ = writeln!(
                    out,
                    "    {} -> {} [label=\"default\"];",
                    block.id.0, default_dest.0
                );
            }
            other => {
                for succ in other.successors() {
                    let _ = writeln!(out, "    {} -> {};", block.id.0, succ.0);
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_cfg;
    use tmg_minic::parse_function;

    #[test]
    fn dot_output_contains_every_block_and_edge_labels() {
        let f = parse_function(
            "void f(int s) { switch (s) { case 0: a(); break; default: b(); break; } if (s) { c(); } }",
        )
        .expect("parse");
        let l = build_cfg(&f);
        let dot = to_dot(&l.cfg);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("label=\"start\""));
        assert!(dot.contains("label=\"end\""));
        assert!(dot.contains("label=\"T\""));
        assert!(dot.contains("label=\"default\""));
        for block in l.cfg.blocks() {
            assert!(dot.contains(&format!("    {} [", block.id.0)));
        }
    }
}
