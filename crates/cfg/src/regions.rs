//! Program-segment regions.
//!
//! A *program segment* (PS) in the paper is a sub-graph of the CFG that can be
//! entered only through a single control edge.  Partitioning "follows the
//! abstract syntax tree": the candidate segments are the function body and the
//! bodies of branch arms (`then`/`else` branches, `switch` arms, loop bodies),
//! each of which is entered through exactly one control edge.  The builder
//! records these candidates as a [`RegionTree`] whose nodes carry their block
//! sets and acyclic path counts.

use crate::block::BlockId;
use crate::graph::Cfg;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use tmg_minic::ast::StmtId;

/// Identity of a region within one [`RegionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId(pub u32);

impl RegionId {
    /// Raw index into the region table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// What part of the syntax a region corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// The whole function body (the root region).
    FunctionBody,
    /// The `then` branch of the given `if` statement.
    Then(StmtId),
    /// The `else` branch of the given `if` statement.
    Else(StmtId),
    /// The arm of the given `switch` statement with the given label value.
    Case(StmtId, i64),
    /// The `default` arm of the given `switch` statement.
    Default(StmtId),
    /// The body of the given bounded loop.
    LoopBody(StmtId),
}

impl RegionKind {
    /// The branching statement the region belongs to (`None` for the root).
    pub fn owner(self) -> Option<StmtId> {
        match self {
            RegionKind::FunctionBody => None,
            RegionKind::Then(s)
            | RegionKind::Else(s)
            | RegionKind::Case(s, _)
            | RegionKind::Default(s)
            | RegionKind::LoopBody(s) => Some(s),
        }
    }
}

/// One single-entry region (program-segment candidate).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Region identity.
    pub id: RegionId,
    /// Syntactic role.
    pub kind: RegionKind,
    /// Enclosing region (`None` for the root).
    pub parent: Option<RegionId>,
    /// Directly nested regions in source order.
    pub children: Vec<RegionId>,
    /// Every block belonging to the region, including blocks of nested
    /// regions, in creation order.
    pub blocks: Vec<BlockId>,
    /// The block control enters the region through (target of the single
    /// entry edge).
    pub entry_block: BlockId,
    /// Number of distinct paths through the region (acyclic paths; loop
    /// bodies contribute `Σ_{k=0..bound} paths(body)^k`), saturating.
    pub path_count: u128,
}

impl Region {
    /// Whether the region contains the given block.
    pub fn contains(&self, block: BlockId) -> bool {
        self.blocks.contains(&block)
    }

    /// Number of blocks in the region (including nested regions' blocks).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

/// Tree of single-entry regions for one function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionTree {
    regions: Vec<Region>,
    root: RegionId,
}

impl RegionTree {
    /// Assembles a tree from its regions; used by the builder and by the
    /// persistent artifact store when materialising a lowering artifact from
    /// disk ([`RegionTree::validate`] checks the structure either way).
    pub fn from_parts(regions: Vec<Region>, root: RegionId) -> RegionTree {
        RegionTree { regions, root }
    }

    /// The root (function-body) region.
    pub fn root(&self) -> &Region {
        &self.regions[self.root.index()]
    }

    /// Id of the root region.
    pub fn root_id(&self) -> RegionId {
        self.root
    }

    /// Access a region by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// All regions in creation (pre-order) order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the tree has no regions (never true for a built function).
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The blocks that belong to `id` but to none of its children — the
    /// blocks that must be instrumented individually when the region is
    /// decomposed.
    pub fn own_blocks(&self, id: RegionId) -> Vec<BlockId> {
        let region = self.region(id);
        let mut nested: HashSet<BlockId> = HashSet::new();
        for child in &region.children {
            nested.extend(self.region(*child).blocks.iter().copied());
        }
        region
            .blocks
            .iter()
            .copied()
            .filter(|b| !nested.contains(b))
            .collect()
    }

    /// Edges leaving the region: `(from, to)` pairs where `from` is inside
    /// the region and `to` is outside.  These are where the paper places the
    /// "after" instrumentation points of a program segment.
    pub fn exit_edges(&self, cfg: &Cfg, id: RegionId) -> Vec<(BlockId, BlockId)> {
        let region = self.region(id);
        let inside: HashSet<BlockId> = region.blocks.iter().copied().collect();
        let mut edges = Vec::new();
        for &b in &region.blocks {
            for succ in cfg.successors(b) {
                if !inside.contains(&succ) {
                    edges.push((b, succ));
                }
            }
        }
        edges
    }

    /// The single entry edge of the region: the unique `(pred, entry_block)`
    /// edge from outside the region, or `None` for the root region (which is
    /// entered by calling the function).
    pub fn entry_edge(&self, cfg: &Cfg, id: RegionId) -> Option<(BlockId, BlockId)> {
        let region = self.region(id);
        if region.kind == RegionKind::FunctionBody {
            return None;
        }
        let inside: HashSet<BlockId> = region.blocks.iter().copied().collect();
        let preds: Vec<BlockId> = cfg
            .predecessors(region.entry_block)
            .iter()
            .copied()
            .filter(|p| !inside.contains(p))
            .collect();
        preds.first().map(|p| (*p, region.entry_block))
    }

    /// Verifies the single-entry property of every region: no block other
    /// than the entry block may have a predecessor outside the region
    /// (ignoring loop back edges, which stay inside the region by
    /// construction).
    pub fn validate(&self, cfg: &Cfg) -> Result<(), String> {
        for region in &self.regions {
            let inside: HashSet<BlockId> = region.blocks.iter().copied().collect();
            for &b in &region.blocks {
                if b == region.entry_block {
                    continue;
                }
                for &p in cfg.predecessors(b) {
                    if !inside.contains(&p) {
                        return Err(format!(
                            "region {} ({:?}) is not single-entry: block {b} is reachable from outside block {p}",
                            region.id, region.kind
                        ));
                    }
                }
            }
            for child in &region.children {
                let child_region = self.region(*child);
                if child_region.parent != Some(region.id) {
                    return Err(format!(
                        "region {} has child {} with mismatched parent",
                        region.id, child
                    ));
                }
                for cb in &child_region.blocks {
                    if !inside.contains(cb) {
                        return Err(format!(
                            "child region {} has block {cb} outside parent {}",
                            child, region.id
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_cfg;
    use tmg_minic::parse_function;

    fn lowered(src: &str) -> crate::builder::LoweredFunction {
        build_cfg(&parse_function(src).expect("parse"))
    }

    #[test]
    fn root_region_covers_all_measurable_units() {
        let l = lowered("void f(int a) { p1(); if (a) { p2(); } else { p3(); } p4(); }");
        let mut root_blocks = l.regions.root().blocks.clone();
        root_blocks.sort_unstable();
        let mut units = l.cfg.measurable_units();
        units.sort_unstable();
        assert_eq!(root_blocks, units);
        l.regions.validate(&l.cfg).expect("single-entry");
    }

    #[test]
    fn then_and_else_become_child_regions() {
        let l = lowered("void f(int a) { if (a) { p1(); } else { p2(); } }");
        let root = l.regions.root();
        assert_eq!(root.children.len(), 2);
        let kinds: Vec<_> = root
            .children
            .iter()
            .map(|c| l.regions.region(*c).kind)
            .collect();
        assert!(matches!(kinds[0], RegionKind::Then(_)));
        assert!(matches!(kinds[1], RegionKind::Else(_)));
    }

    #[test]
    fn own_blocks_excludes_children() {
        let l = lowered("void f(int a) { if (a) { p1(); } else { p2(); } }");
        let root_id = l.regions.root_id();
        let own = l.regions.own_blocks(root_id);
        for child in &l.regions.root().children {
            for b in &l.regions.region(*child).blocks {
                assert!(!own.contains(b));
            }
        }
        // Own blocks: entry, the condition block, the join.
        assert_eq!(own.len(), 3);
    }

    #[test]
    fn branch_regions_have_a_single_entry_edge() {
        let l = lowered("void f(int a) { if (a) { p1(); p2(); } p3(); }");
        for region in l.regions.regions() {
            if region.kind == RegionKind::FunctionBody {
                assert!(l.regions.entry_edge(&l.cfg, region.id).is_none());
            } else {
                let edge = l.regions.entry_edge(&l.cfg, region.id).expect("entry edge");
                assert_eq!(edge.1, region.entry_block);
            }
        }
    }

    #[test]
    fn exit_edges_leave_the_region() {
        let l = lowered("void f(int a) { if (a) { p1(); } p2(); }");
        let root = l.regions.root();
        let then_id = root.children[0];
        let exits = l.regions.exit_edges(&l.cfg, then_id);
        assert_eq!(exits.len(), 1);
        let (from, to) = exits[0];
        assert!(l.regions.region(then_id).contains(from));
        assert!(!l.regions.region(then_id).contains(to));
    }

    #[test]
    fn nested_regions_nest_their_blocks() {
        let l = lowered("void f(int a) { if (a) { if (a > 1) { p1(); } else { p2(); } } p3(); }");
        let root = l.regions.root();
        let outer_then = l.regions.region(root.children[0]);
        assert_eq!(outer_then.children.len(), 2);
        for child in &outer_then.children {
            for b in &l.regions.region(*child).blocks {
                assert!(outer_then.contains(*b));
            }
        }
        l.regions.validate(&l.cfg).expect("valid");
    }

    #[test]
    fn switch_arms_become_regions() {
        let l = lowered(
            "void f(int s) { switch (s) { case 0: a0(); break; case 1: a1(); break; default: d(); break; } }",
        );
        let kinds: Vec<_> = l
            .regions
            .root()
            .children
            .iter()
            .map(|c| l.regions.region(*c).kind)
            .collect();
        assert_eq!(kinds.len(), 3);
        assert!(matches!(kinds[0], RegionKind::Case(_, 0)));
        assert!(matches!(kinds[1], RegionKind::Case(_, 1)));
        assert!(matches!(kinds[2], RegionKind::Default(_)));
    }

    #[test]
    fn region_kind_owner() {
        assert_eq!(RegionKind::FunctionBody.owner(), None);
        assert_eq!(RegionKind::Then(StmtId(3)).owner(), Some(StmtId(3)));
        assert_eq!(RegionKind::Case(StmtId(4), 7).owner(), Some(StmtId(4)));
    }
}
