//! Dominator-tree computation (iterative algorithm of Cooper, Harvey and
//! Kennedy).
//!
//! The dominator tree is used to validate the single-entry property of
//! program-segment regions: every block of a region must be dominated by the
//! region's entry block, otherwise the region could be entered through more
//! than one control edge and per-segment measurements would be unsound.

use crate::block::BlockId;
use crate::graph::Cfg;
use std::collections::HashMap;

/// Immediate-dominator relation for a [`Cfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominatorTree {
    idom: HashMap<BlockId, BlockId>,
    entry: BlockId,
}

impl DominatorTree {
    /// Computes the dominator tree of `cfg`.
    pub fn compute(cfg: &Cfg) -> DominatorTree {
        let rpo = cfg.reverse_postorder();
        let order: HashMap<BlockId, usize> = rpo.iter().enumerate().map(|(i, b)| (*b, i)).collect();
        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        idom.insert(cfg.entry(), cfg.entry());

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.predecessors(b) {
                    if !order.contains_key(&p) {
                        continue; // unreachable predecessor
                    }
                    if idom.contains_key(&p) {
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(&idom, &order, p, cur),
                        });
                    }
                }
                if let Some(n) = new_idom {
                    if idom.get(&b) != Some(&n) {
                        idom.insert(b, n);
                        changed = true;
                    }
                }
            }
        }
        DominatorTree {
            idom,
            entry: cfg.entry(),
        }
    }

    /// The immediate dominator of `block` (`None` for the entry block or for
    /// unreachable blocks).
    pub fn idom(&self, block: BlockId) -> Option<BlockId> {
        if block == self.entry {
            return None;
        }
        self.idom.get(&block).copied()
    }

    /// Whether `a` dominates `b` (every block dominates itself).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }

    /// All blocks dominated by `head`, in no particular order.
    pub fn dominated_by(&self, cfg: &Cfg, head: BlockId) -> Vec<BlockId> {
        cfg.reachable_blocks()
            .into_iter()
            .filter(|b| self.dominates(head, *b))
            .collect()
    }
}

fn intersect(
    idom: &HashMap<BlockId, BlockId>,
    order: &HashMap<BlockId, usize>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while order[&a] > order[&b] {
            a = idom[&a];
        }
        while order[&b] > order[&a] {
            b = idom[&b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_cfg;
    use tmg_minic::parse_function;

    fn lowered(src: &str) -> crate::builder::LoweredFunction {
        build_cfg(&parse_function(src).expect("parse"))
    }

    #[test]
    fn entry_dominates_everything() {
        let l = lowered("void f(int a) { if (a) { x(); } else { y(); } z(); }");
        let dom = DominatorTree::compute(&l.cfg);
        for b in l.cfg.reachable_blocks() {
            assert!(dom.dominates(l.cfg.entry(), b));
        }
        assert_eq!(dom.idom(l.cfg.entry()), None);
    }

    #[test]
    fn branch_blocks_do_not_dominate_the_join() {
        let l = lowered("void f(int a) { if (a) { x(); } else { y(); } z(); }");
        let dom = DominatorTree::compute(&l.cfg);
        let root = l.regions.root();
        let then_entry = l.regions.region(root.children[0]).entry_block;
        let else_entry = l.regions.region(root.children[1]).entry_block;
        assert!(!dom.dominates(then_entry, l.cfg.exit()));
        assert!(!dom.dominates(else_entry, l.cfg.exit()));
    }

    #[test]
    fn region_entry_dominates_all_region_blocks() {
        let l = lowered(
            "void f(int a) { p(); if (a) { q(); if (a > 1) { r(); } else { s(); } } if (a) { t(); } u(); }",
        );
        let dom = DominatorTree::compute(&l.cfg);
        for region in l.regions.regions() {
            for &b in &region.blocks {
                assert!(
                    dom.dominates(region.entry_block, b),
                    "entry {} must dominate {b} in region {:?}",
                    region.entry_block,
                    region.kind
                );
            }
        }
    }

    #[test]
    fn loop_header_dominates_body() {
        let l = lowered(
            "void f(int n) { int i; i = 0; while (i < n) __bound(4) { i = i + 1; } done(); }",
        );
        let dom = DominatorTree::compute(&l.cfg);
        let header = l
            .cfg
            .blocks()
            .iter()
            .find(|b| b.kind == crate::block::BlockKind::LoopHeader)
            .expect("header")
            .id;
        let loop_region = l
            .regions
            .regions()
            .iter()
            .find(|r| matches!(r.kind, crate::regions::RegionKind::LoopBody(_)))
            .expect("loop region");
        for &b in &loop_region.blocks {
            assert!(dom.dominates(header, b));
        }
    }

    #[test]
    fn dominated_by_returns_the_dominance_subtree() {
        let l = lowered("void f(int a) { if (a) { x(); y(); } z(); }");
        let dom = DominatorTree::compute(&l.cfg);
        let sub = dom.dominated_by(&l.cfg, l.cfg.entry());
        assert_eq!(sub.len(), l.cfg.reachable_blocks().len());
    }
}
