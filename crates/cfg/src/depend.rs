//! Def/use dependence analysis and cone-of-influence computation.
//!
//! The model checker answers a *batch* of path queries about one function;
//! every query mentions a handful of branch statements.  Following the
//! program-slicing approach of Béchennec & Cassez (slice the program to the
//! cone of influence of the property before checking), the checker wants to
//! know which statements and variables can possibly affect the feasibility
//! of the queried decisions — everything else can be removed from the model
//! without changing any query's verdict.
//!
//! [`cone_of_influence`] computes that set with a flow-sensitive *backward*
//! walk over the structured AST:
//!
//! * the queried branch statements seed the analysis — their conditions'
//!   variables become live;
//! * an assignment is kept iff its target is live at that program point (its
//!   right-hand side's variables become live in turn — the def/use closure);
//! * a branch statement is kept iff it is a seed, contains a kept statement
//!   (control dependence), or contains a `return` (dropping it would change
//!   which executions reach the code behind it);
//! * `while` loops are always kept: proving that a dropped loop terminates
//!   for at least one valuation is out of scope, and a non-terminating loop
//!   would make everything behind it unreachable;
//! * statements whose expressions can *fault* (division or modulo by
//!   anything other than a non-zero constant, or a read of an undeclared
//!   name) are kept, because a faulting transition kills the run in the
//!   encoded model and thereby constrains reachability.
//!
//! The result is exact for the checker's purposes: a dropped branch has no
//! kept statement and no `return` in either arm, always rejoins the same
//! continuation, and cannot write any variable a kept guard (transitively)
//! reads — so for every input vector the kept statements compute the same
//! values and take the same decisions with or without the dropped code.
//! Function parameters are never dropped (witness vectors stay complete);
//! locals mentioned only by dropped statements disappear from the model,
//! which is where the checker's state-vector reduction comes from.

use std::collections::HashSet;
use tmg_minic::ast::{Block, Expr, Function, Stmt, StmtId};

/// The cone of influence of a set of queried branch statements.
#[derive(Debug, Clone)]
pub struct ConeOfInfluence {
    /// Assignment and branching statements that must survive slicing.
    /// (`Call` and `Return` statements are always retained and never appear
    /// here; a branch absent from this set may be dropped wholesale.)
    pub keep: HashSet<StmtId>,
    /// Variables that can affect a kept guard or kept assignment — the
    /// def/use closure of the seeds (every variable a kept statement
    /// mentions).
    pub relevant_vars: HashSet<String>,
    /// Variables whose value *at function entry* can affect a kept guard
    /// (backward liveness at the entry point).  An input outside this set is
    /// overwritten before any kept read, so its initial value — the thing a
    /// witness assigns — cannot matter; the checker pins exactly the inputs
    /// in this set when completing sliced witnesses.
    pub entry_live: HashSet<String>,
    /// Assignment/branch statements outside the cone (droppable).
    pub droppable_stmts: usize,
    /// Locals mentioned only outside the cone (their state dimensions can be
    /// dropped from the model).
    pub droppable_locals: Vec<String>,
}

impl ConeOfInfluence {
    /// Whether slicing to this cone would remove anything at all.
    pub fn drops_anything(&self) -> bool {
        self.droppable_stmts > 0 || !self.droppable_locals.is_empty()
    }
}

/// Computes the cone of influence of `seeds` (branch statement ids, usually
/// the statement union of a path-query batch) in `function`.
pub fn cone_of_influence(function: &Function, seeds: &HashSet<StmtId>) -> ConeOfInfluence {
    let declared: HashSet<&str> = function
        .params
        .iter()
        .chain(function.locals.iter())
        .map(|d| d.name.as_str())
        .collect();
    let mut analysis = Analysis {
        seeds,
        declared,
        keep: HashSet::new(),
    };
    let mut live: HashSet<String> = HashSet::new();
    analysis.slice_block(&function.body, &mut live);
    // Non-constant local initialisers execute as assignments before the
    // body; their reads feed the initialised variable exactly like an
    // assignment would (the encoder emits one).
    loop {
        let before = live.len();
        for local in &function.locals {
            if let Some(init) = &local.init {
                if !matches!(init, Expr::Int(_))
                    && (live.contains(&local.name) || analysis.has_unsafe_expr(init))
                {
                    for v in init.referenced_vars() {
                        live.insert(v.to_owned());
                    }
                }
            }
        }
        if live.len() == before {
            break;
        }
    }

    let keep = analysis.keep;
    // Count what the cone leaves behind.
    let mut droppable_stmts = 0usize;
    let mut mentioned: HashSet<String> = HashSet::new();
    count_droppable(&function.body, &keep, &mut droppable_stmts, &mut mentioned);
    // Kept non-constant initialisers mention their reads too (fixpoint:
    // initialisers may chain through other locals).
    loop {
        let before = mentioned.len();
        for local in &function.locals {
            if let Some(init) = &local.init {
                if !matches!(init, Expr::Int(_)) && mentioned.contains(&local.name) {
                    for v in init.referenced_vars() {
                        mentioned.insert(v.to_owned());
                    }
                }
            }
        }
        if mentioned.len() == before {
            break;
        }
    }
    let droppable_locals: Vec<String> = function
        .locals
        .iter()
        .filter(|l| !mentioned.contains(&l.name))
        .map(|l| l.name.clone())
        .collect();
    ConeOfInfluence {
        keep,
        relevant_vars: mentioned,
        entry_live: live,
        droppable_stmts,
        droppable_locals,
    }
}

struct Analysis<'a> {
    seeds: &'a HashSet<StmtId>,
    declared: HashSet<&'a str>,
    keep: HashSet<StmtId>,
}

impl Analysis<'_> {
    /// Whether evaluating `e` can fault in the encoded model: division or
    /// modulo by anything but a non-zero constant, or a read of an
    /// undeclared name.  Faulting transitions kill the run, so statements
    /// containing such expressions constrain reachability and must be kept.
    fn has_unsafe_expr(&self, e: &Expr) -> bool {
        use tmg_minic::ast::BinOp;
        match e {
            Expr::Int(_) => false,
            Expr::Var(name) => !self.declared.contains(name.as_str()),
            Expr::Unary { operand, .. } => self.has_unsafe_expr(operand),
            Expr::Binary { op, lhs, rhs } => {
                if matches!(op, BinOp::Div | BinOp::Mod) && !matches!(**rhs, Expr::Int(v) if v != 0)
                {
                    return true;
                }
                self.has_unsafe_expr(lhs) || self.has_unsafe_expr(rhs)
            }
        }
    }

    fn mark_live(live: &mut HashSet<String>, e: &Expr) {
        for v in e.referenced_vars() {
            live.insert(v.to_owned());
        }
    }

    /// Backward flow-sensitive slice of one block.  `live` is the set of
    /// variables whose value at block exit can affect a kept statement; on
    /// return it holds the same set at block entry.  Returns whether the
    /// block keeps any statement (control dependence for the enclosing
    /// branch).
    fn slice_block(&mut self, block: &Block, live: &mut HashSet<String>) -> bool {
        let mut kept_any = false;
        for stmt in block.stmts.iter().rev() {
            match stmt {
                // Calls are skip transitions in the model (externals have no
                // effect on program variables); they ride along with whatever
                // surrounds them and never force a branch to stay.
                Stmt::Call { .. } => {}
                // A `return` redirects every execution reaching it to the
                // function exit; it reads nothing the encoder evaluates, but
                // the *enclosing* branches must stay (handled by the caller
                // via `has_return`).
                Stmt::Return { .. } => {}
                Stmt::Assign {
                    id, target, value, ..
                } => {
                    if live.contains(target) || self.has_unsafe_expr(value) {
                        self.keep.insert(*id);
                        kept_any = true;
                        live.remove(target);
                        Self::mark_live(live, value);
                    }
                }
                Stmt::If {
                    id,
                    cond,
                    then_branch,
                    else_branch,
                    ..
                } => {
                    let mut live_then = live.clone();
                    let kept_then = self.slice_block(then_branch, &mut live_then);
                    let (kept_else, live_else) = match else_branch {
                        Some(b) => {
                            let mut l = live.clone();
                            (self.slice_block(b, &mut l), Some(l))
                        }
                        None => (false, None),
                    };
                    let must_keep = self.seeds.contains(id)
                        || kept_then
                        || kept_else
                        || block_has_return(then_branch)
                        || else_branch.as_ref().is_some_and(block_has_return)
                        || self.has_unsafe_expr(cond);
                    if must_keep {
                        self.keep.insert(*id);
                        kept_any = true;
                        live.extend(live_then);
                        if let Some(l) = live_else {
                            live.extend(l);
                        }
                        Self::mark_live(live, cond);
                    }
                }
                Stmt::Switch {
                    id,
                    selector,
                    cases,
                    default,
                    ..
                } => {
                    let mut kept_arm = false;
                    let mut has_return = false;
                    let mut merged: Vec<HashSet<String>> = Vec::new();
                    for case in cases {
                        let mut l = live.clone();
                        kept_arm |= self.slice_block(&case.body, &mut l);
                        has_return |= block_has_return(&case.body);
                        merged.push(l);
                    }
                    if let Some(d) = default {
                        let mut l = live.clone();
                        kept_arm |= self.slice_block(d, &mut l);
                        has_return |= block_has_return(d);
                        merged.push(l);
                    }
                    let must_keep = self.seeds.contains(id)
                        || kept_arm
                        || has_return
                        || self.has_unsafe_expr(selector);
                    if must_keep {
                        self.keep.insert(*id);
                        kept_any = true;
                        for l in merged {
                            live.extend(l);
                        }
                        Self::mark_live(live, selector);
                    }
                }
                Stmt::While { id, cond, body, .. } => {
                    // Always kept: a dropped loop that never exits for any
                    // valuation would make code behind it unreachable, and
                    // termination is not something this analysis proves.
                    self.keep.insert(*id);
                    kept_any = true;
                    // Loop fixpoint: the body executes before the condition
                    // is re-read, so body liveness feeds itself.
                    Self::mark_live(live, cond);
                    loop {
                        let mut iter = live.clone();
                        self.slice_block(body, &mut iter);
                        Self::mark_live(&mut iter, cond);
                        let before = live.len();
                        live.extend(iter);
                        if live.len() == before {
                            break;
                        }
                    }
                }
            }
        }
        kept_any
    }
}

fn block_has_return(block: &Block) -> bool {
    block.stmts.iter().any(|s| match s {
        Stmt::Return { .. } => true,
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => block_has_return(then_branch) || else_branch.as_ref().is_some_and(block_has_return),
        Stmt::Switch { cases, default, .. } => {
            cases.iter().any(|c| block_has_return(&c.body))
                || default.as_ref().is_some_and(block_has_return)
        }
        Stmt::While { body, .. } => block_has_return(body),
        _ => false,
    })
}

/// Counts statements outside `keep` and collects the variables mentioned by
/// the statements that survive (so droppable locals can be identified).
fn count_droppable(
    block: &Block,
    keep: &HashSet<StmtId>,
    droppable: &mut usize,
    mentioned: &mut HashSet<String>,
) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Call { .. } | Stmt::Return { .. } => {}
            Stmt::Assign {
                id, target, value, ..
            } => {
                if keep.contains(id) {
                    mentioned.insert(target.clone());
                    for v in value.referenced_vars() {
                        mentioned.insert(v.to_owned());
                    }
                } else {
                    *droppable += 1;
                }
            }
            Stmt::If {
                id,
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                if keep.contains(id) {
                    for v in cond.referenced_vars() {
                        mentioned.insert(v.to_owned());
                    }
                    count_droppable(then_branch, keep, droppable, mentioned);
                    if let Some(b) = else_branch {
                        count_droppable(b, keep, droppable, mentioned);
                    }
                } else {
                    *droppable += 1;
                }
            }
            Stmt::Switch {
                id,
                selector,
                cases,
                default,
                ..
            } => {
                if keep.contains(id) {
                    for v in selector.referenced_vars() {
                        mentioned.insert(v.to_owned());
                    }
                    for case in cases {
                        count_droppable(&case.body, keep, droppable, mentioned);
                    }
                    if let Some(b) = default {
                        count_droppable(b, keep, droppable, mentioned);
                    }
                } else {
                    *droppable += 1;
                }
            }
            Stmt::While { id, cond, body, .. } => {
                if keep.contains(id) {
                    for v in cond.referenced_vars() {
                        mentioned.insert(v.to_owned());
                    }
                    count_droppable(body, keep, droppable, mentioned);
                } else {
                    *droppable += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_minic::parse_function;

    fn branch_ids(f: &Function) -> Vec<StmtId> {
        let mut out = Vec::new();
        f.for_each_stmt(&mut |s| {
            if matches!(
                s,
                Stmt::If { .. } | Stmt::Switch { .. } | Stmt::While { .. }
            ) {
                out.push(s.id());
            }
        });
        out
    }

    #[test]
    fn unqueried_independent_branches_leave_the_cone() {
        let src = r#"
            void f(int key __range(0, 100), char mode __range(0, 5)) {
                if (key == 42) { hit(); }
                if (mode > 3) { fast(); } else { slow(); }
            }
        "#;
        let f = parse_function(src).expect("parse");
        let branches = branch_ids(&f);
        let seeds: HashSet<StmtId> = [branches[0]].into_iter().collect();
        let cone = cone_of_influence(&f, &seeds);
        assert!(cone.keep.contains(&branches[0]));
        assert!(
            !cone.keep.contains(&branches[1]),
            "mode branch is droppable"
        );
        assert!(cone.relevant_vars.contains("key"));
        assert!(!cone.relevant_vars.contains("mode"));
        assert!(cone.drops_anything());
    }

    #[test]
    fn data_dependencies_pull_assignments_into_the_cone() {
        let src = r#"
            void f(int a __range(0, 9), int b __range(0, 9)) {
                int t; int dead;
                t = a + 1;
                dead = b + 1;
                if (t > 4) { x(); }
            }
        "#;
        let f = parse_function(src).expect("parse");
        let seeds: HashSet<StmtId> = branch_ids(&f).into_iter().collect();
        let cone = cone_of_influence(&f, &seeds);
        assert!(cone.relevant_vars.contains("t"));
        assert!(cone.relevant_vars.contains("a"));
        assert!(!cone.relevant_vars.contains("b"));
        assert_eq!(cone.droppable_locals, vec!["dead".to_owned()]);
        assert_eq!(cone.droppable_stmts, 1);
    }

    #[test]
    fn flow_sensitivity_ignores_assignments_after_the_last_use() {
        let src = r#"
            void f(int a __range(0, 9)) {
                int t;
                t = a;
                if (t > 4) { x(); }
                t = a + 7;
            }
        "#;
        let f = parse_function(src).expect("parse");
        let seeds: HashSet<StmtId> = branch_ids(&f).into_iter().collect();
        let cone = cone_of_influence(&f, &seeds);
        // The trailing reassignment cannot affect the earlier guard.
        assert_eq!(cone.droppable_stmts, 1);
    }

    #[test]
    fn branches_containing_returns_are_kept() {
        let src = r#"
            void f(int a __range(0, 9), int g __range(0, 1)) {
                if (g > 0) { return; }
                if (a > 4) { x(); }
            }
        "#;
        let f = parse_function(src).expect("parse");
        let branches = branch_ids(&f);
        let seeds: HashSet<StmtId> = [branches[1]].into_iter().collect();
        let cone = cone_of_influence(&f, &seeds);
        assert!(
            cone.keep.contains(&branches[0]),
            "early-return branch constrains which runs reach the seed"
        );
        assert!(cone.relevant_vars.contains("g"));
    }

    #[test]
    fn while_loops_are_always_kept() {
        let src = r#"
            void f(int a __range(0, 3), int n __range(0, 3)) {
                int i = 0;
                while (i < n) __bound(3) { i = i + 1; }
                if (a > 1) { x(); }
            }
        "#;
        let f = parse_function(src).expect("parse");
        let branches = branch_ids(&f);
        let seed_if = *branches.last().expect("if");
        let seeds: HashSet<StmtId> = [seed_if].into_iter().collect();
        let cone = cone_of_influence(&f, &seeds);
        assert_eq!(cone.keep.len(), 3, "while + its counter assignment + if");
        assert!(cone.relevant_vars.contains("n"));
    }

    #[test]
    fn unsafe_divisions_are_kept() {
        let src = r#"
            void f(int a __range(0, 9), int d __range(0, 9)) {
                int t;
                t = a / d;
                if (a > 4) { x(); }
            }
        "#;
        let f = parse_function(src).expect("parse");
        let seeds: HashSet<StmtId> = branch_ids(&f).into_iter().collect();
        let cone = cone_of_influence(&f, &seeds);
        // `t` is never read, but `a / d` faults for d == 0, which kills runs
        // in the model — the assignment constrains reachability.
        assert_eq!(cone.droppable_stmts, 0);
        assert!(cone.relevant_vars.contains("d"));
    }

    #[test]
    fn constant_divisions_are_droppable() {
        let src = r#"
            void f(int a __range(0, 9), int s __range(0, 9)) {
                int t;
                t = s / 3;
                if (a > 4) { x(); }
            }
        "#;
        let f = parse_function(src).expect("parse");
        let seeds: HashSet<StmtId> = branch_ids(&f).into_iter().collect();
        let cone = cone_of_influence(&f, &seeds);
        assert_eq!(cone.droppable_stmts, 1);
        assert_eq!(cone.droppable_locals, vec!["t".to_owned()]);
    }

    #[test]
    fn full_seed_set_keeps_everything_control_relevant() {
        let src = r#"
            void f(char a __range(0, 4), char b __range(0, 4)) {
                if (a > 2) { if (b == 1) { x(); } else { y(); } } else { z(); }
            }
        "#;
        let f = parse_function(src).expect("parse");
        let seeds: HashSet<StmtId> = branch_ids(&f).into_iter().collect();
        let cone = cone_of_influence(&f, &seeds);
        assert!(!cone.drops_anything());
    }
}
