//! The unified metrics registry.
//!
//! Every counter set in the system — the checker counters of
//! `tmg_tsys::metrics`, the module-composition counters of
//! `tmg_core::module::metrics`, the per-op latency histograms and the
//! per-store tier counters — registers into one process-wide
//! [`MetricsRegistry`], which renders each as a named *group* of a single
//! versioned `tmg-obs-stats/v1` snapshot.  Two registration shapes cover
//! all of them:
//!
//! * [`register_counters`]: a fixed list of named `&'static AtomicU64`s
//!   (the process-wide counter sets).  Registration is idempotent per
//!   group and the render preserves declaration order, so the emitted
//!   JSON is bit-compatible with the structs it replaced.
//! * [`register_section`]: a closure rendering a whole JSON object (the
//!   instance-scoped sources: histograms, tier counters).  Re-registering
//!   replaces the closure, so a fresh server instance takes over its
//!   group.
//!
//! The snapshot assembly in `tmg-service` pulls its `checker`, `module`
//! and `latency` sections from here — the registry is the single source;
//! the old per-crate `snapshot().to_json()` renderers remain as the
//! compatibility cross-check the tests assert against.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// One named counter inside a group: `(json_key, counter)`.
pub type NamedCounter = (&'static str, &'static AtomicU64);

enum Source {
    /// Named atomics rendered in declaration order, with an optional
    /// leading `"schema"` member (matching the struct renderer each set
    /// replaced).
    Counters {
        schema: Option<&'static str>,
        counters: Vec<NamedCounter>,
    },
    /// A closure rendering the whole group object.
    Section(Box<dyn Fn() -> String + Send + Sync>),
}

struct Group {
    name: &'static str,
    source: Source,
}

/// The process-wide registry.  Obtain it via [`registry`].
pub struct MetricsRegistry {
    groups: Mutex<Vec<Group>>,
}

impl MetricsRegistry {
    /// Registers a group of named atomic counters.  A second registration
    /// under the same group name is ignored (the counters are process-wide
    /// statics; there is nothing newer to say).
    pub fn register_counters(
        &self,
        group: &'static str,
        schema: Option<&'static str>,
        counters: Vec<NamedCounter>,
    ) {
        let mut groups = self.groups.lock().expect("metrics registry");
        if groups.iter().any(|g| g.name == group) {
            return;
        }
        groups.push(Group {
            name: group,
            source: Source::Counters { schema, counters },
        });
    }

    /// Registers (or replaces) a closure-rendered group.  Instance-scoped
    /// sources re-register on construction, so the snapshot always renders
    /// the live instance.
    pub fn register_section(
        &self,
        group: &'static str,
        render: Box<dyn Fn() -> String + Send + Sync>,
    ) {
        let mut groups = self.groups.lock().expect("metrics registry");
        if let Some(existing) = groups.iter_mut().find(|g| g.name == group) {
            existing.source = Source::Section(render);
        } else {
            groups.push(Group {
                name: group,
                source: Source::Section(render),
            });
        }
    }

    /// Renders one group as a JSON object, `None` when unregistered.
    pub fn group_json(&self, group: &str) -> Option<String> {
        let groups = self.groups.lock().expect("metrics registry");
        groups
            .iter()
            .find(|g| g.name == group)
            .map(|g| render_group(&g.source))
    }

    /// Renders every registered group, in registration order, as one
    /// `tmg-obs-stats/v1` object.
    pub fn snapshot_json(&self) -> String {
        let groups = self.groups.lock().expect("metrics registry");
        let mut out = String::from("{ \"schema\": \"tmg-obs-stats/v1\"");
        for group in groups.iter() {
            let _ = write!(out, ", \"{}\": {}", group.name, render_group(&group.source));
        }
        out.push_str(" }");
        out
    }

    /// Registered group names, in registration order.
    pub fn group_names(&self) -> Vec<&'static str> {
        self.groups
            .lock()
            .expect("metrics registry")
            .iter()
            .map(|g| g.name)
            .collect()
    }
}

fn render_group(source: &Source) -> String {
    match source {
        Source::Counters { schema, counters } => {
            let mut out = String::from("{ ");
            let mut first = true;
            if let Some(schema) = schema {
                let _ = write!(out, "\"schema\": \"{schema}\"");
                first = false;
            }
            for (name, counter) in counters {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "\"{}\": {}", name, counter.load(Ordering::Relaxed));
            }
            out.push_str(" }");
            out
        }
        Source::Section(render) => render(),
    }
}

/// The process-wide registry instance.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| MetricsRegistry {
        groups: Mutex::new(Vec::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_A: AtomicU64 = AtomicU64::new(0);
    static TEST_B: AtomicU64 = AtomicU64::new(0);

    #[test]
    fn counters_render_in_declaration_order_and_register_once() {
        let reg = registry();
        reg.register_counters(
            "test_counters",
            Some("tmg-test-stats/v1"),
            vec![("alpha", &TEST_A), ("beta", &TEST_B)],
        );
        // Idempotent: a second registration with different content is
        // ignored.
        reg.register_counters("test_counters", None, vec![("gamma", &TEST_A)]);
        TEST_A.store(3, Ordering::Relaxed);
        TEST_B.store(7, Ordering::Relaxed);
        let json = reg.group_json("test_counters").expect("registered");
        assert_eq!(
            json,
            "{ \"schema\": \"tmg-test-stats/v1\", \"alpha\": 3, \"beta\": 7 }"
        );
    }

    #[test]
    fn sections_replace_on_reregistration() {
        let reg = registry();
        reg.register_section("test_section", Box::new(|| "{ \"v\": 1 }".to_owned()));
        reg.register_section("test_section", Box::new(|| "{ \"v\": 2 }".to_owned()));
        assert_eq!(
            reg.group_json("test_section").as_deref(),
            Some("{ \"v\": 2 }")
        );
    }

    #[test]
    fn the_snapshot_is_one_versioned_object_over_all_groups() {
        let reg = registry();
        reg.register_section("test_snapshot", Box::new(|| "{ \"x\": 9 }".to_owned()));
        let json = reg.snapshot_json();
        assert!(json.starts_with("{ \"schema\": \"tmg-obs-stats/v1\""));
        assert!(json.contains("\"test_snapshot\": { \"x\": 9 }"));
        assert!(json.ends_with(" }"));
        assert!(reg.group_names().contains(&"test_snapshot"));
        assert!(reg.group_json("unregistered_group").is_none());
    }
}
