//! The thread-local span recorder.
//!
//! A *span* is one named, timed region of work: a monotonic-clock
//! enter/exit pair with a parent link, so a request's wall time decomposes
//! into a tree of self-times (pipeline stages, checker phases, segment-log
//! I/O, service queueing).  The recorder is built for a hot path that is
//! instrumented *everywhere* but traced *rarely*:
//!
//! * **Disabled is the default and costs one relaxed atomic load** per
//!   call site.  [`span`] returns an inert guard without touching the
//!   clock, the thread-local state or any lock; the `obs_overhead` bench
//!   workload pins the contract (≤ 2 % on a full pipeline workload).
//! * **Recording is thread-local.**  An enabled [`span`] reads the
//!   monotonic clock twice (enter/exit) and pushes one fixed-size
//!   [`SpanRecord`] onto a thread-local buffer — no allocation per span
//!   beyond the buffer's amortised growth, no synchronisation while spans
//!   are open.  Names are `&'static str`, so nothing is copied.
//! * **Publication happens at the trace boundary.**  When a thread's last
//!   open span closes, its buffer drains into the process-wide [`sink`]:
//!   per-trace buckets for spans that belong to a request trace, and a
//!   bounded ring for free spans (trace 0).  Both are capped, so an
//!   unconsumed recorder never grows without bound — old spans are
//!   dropped, newest kept.
//! * **Traces cross threads by value.**  [`current_context`] captures the
//!   active `(trace, parent)` pair; [`enter_trace`] re-establishes it on a
//!   worker thread (the rayon fan-out of `analyse_all` is the canonical
//!   user), so a request's spans land in one bucket no matter which
//!   threads did the work.
//!
//! Consumers: the service retains or drops a request's bucket at respond
//! time ([`retain_trace`] / [`discard_trace`]) and serves retained trees
//! through its `profile` op; `reproduce -- profile` drains everything
//! ([`drain_all`]) into a Chrome trace-event JSON.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use rustc_hash::FxHashMap;

/// One closed span.  `parent == 0` means "root of its trace"; `trace == 0`
/// means the span ran outside any request trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace the span belongs to (0 = none).
    pub trace: u64,
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Enclosing span's id (0 = root).
    pub parent: u64,
    /// Static name, e.g. `"stage:testgen"`.
    pub name: &'static str,
    /// Start, microseconds since the process epoch.
    pub start_us: u64,
    /// Duration in microseconds (end − start, saturating).
    pub dur_us: u64,
}

/// Spans kept in the free ring (trace 0) before old ones are dropped.
const RING_CAP: usize = 65_536;

/// Retained request traces kept for the `profile` op (FIFO eviction).
const RETAINED_TRACES_CAP: usize = 64;

/// Open spans recorded per live trace bucket before the tail is dropped
/// (a runaway trace must not hold the process hostage).
const TRACE_SPANS_CAP: usize = 16_384;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Turns recording on or off process-wide.  Disabled call sites cost one
/// relaxed load; spans that are open when recording flips off still record
/// on close (their guard was armed at entry).
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the recorder is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds from the process epoch to now (monotonic).
pub fn now_us() -> u64 {
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Microseconds from the process epoch to `at` (0 when `at` predates the
/// epoch — only possible for instants captured before the first obs call).
pub fn instant_us(at: Instant) -> u64 {
    u64::try_from(at.saturating_duration_since(epoch()).as_micros()).unwrap_or(u64::MAX)
}

/// The per-thread recorder state: the active trace, the open-span stack
/// and the buffer of closed-but-unpublished spans.
struct ThreadState {
    trace: u64,
    /// Parent for new roots on this thread (a cross-thread continuation's
    /// anchor); 0 when the thread owns no trace.
    base_parent: u64,
    stack: Vec<u64>,
    buf: Vec<SpanRecord>,
}

thread_local! {
    static THREAD: RefCell<ThreadState> = const {
        RefCell::new(ThreadState { trace: 0, base_parent: 0, stack: Vec::new(), buf: Vec::new() })
    };
}

/// The process-wide sink the thread-local buffers drain into.
struct Sink {
    /// Closed spans of live (not yet retained or discarded) traces.
    live: FxHashMap<u64, Vec<SpanRecord>>,
    /// Spans recorded outside any trace, newest-kept ring.
    ring: Vec<SpanRecord>,
    /// Completed traces kept for the `profile` op, insertion-ordered for
    /// FIFO eviction.
    retained: Vec<(u64, Vec<SpanRecord>)>,
    /// Spans dropped at a cap (ring, trace bucket or retained evictions).
    dropped: u64,
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| {
        Mutex::new(Sink {
            live: FxHashMap::default(),
            ring: Vec::new(),
            retained: Vec::new(),
            dropped: 0,
        })
    })
}

fn flush_buf(buf: &mut Vec<SpanRecord>) {
    if buf.is_empty() {
        return;
    }
    let mut sink = sink().lock().expect("span sink");
    for record in buf.drain(..) {
        if record.trace == 0 {
            if sink.ring.len() >= RING_CAP {
                sink.ring.remove(0);
                sink.dropped += 1;
            }
            sink.ring.push(record);
        } else {
            let bucket = sink.live.entry(record.trace).or_default();
            if bucket.len() >= TRACE_SPANS_CAP {
                sink.dropped += 1;
            } else {
                bucket.push(record);
            }
        }
    }
}

/// Closes its span on drop.  Inert (all-zero) when recording was disabled
/// at entry.
pub struct SpanGuard {
    id: u64,
    start_us: u64,
    name: &'static str,
}

impl SpanGuard {
    /// The span's id, for attaching manual child spans (0 when inert).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        close_span(self.id, self.name, self.start_us);
    }
}

/// The recording half of [`SpanGuard::drop`], kept out of line so the
/// guard inlined into hot pipeline/checker functions contributes nothing
/// to their code size beyond the `id == 0` check.
#[cold]
#[inline(never)]
fn close_span(id: u64, name: &'static str, start_us: u64) {
    let end = now_us();
    THREAD.with(|cell| {
        let mut state = cell.borrow_mut();
        // Unwind the stack to this guard (panics may skip inner pops).
        while let Some(top) = state.stack.pop() {
            if top == id {
                break;
            }
        }
        let parent = state.stack.last().copied().unwrap_or(state.base_parent);
        let record = SpanRecord {
            trace: state.trace,
            id,
            parent,
            name,
            start_us,
            dur_us: end.saturating_sub(start_us),
        };
        state.buf.push(record);
        if state.stack.is_empty() {
            flush_buf(&mut state.buf);
        }
    });
}

/// Opens a span named `name` under the thread's current span (or trace
/// root).  Near-zero cost when recording is disabled — the enabled path
/// is out of line for the same reason as [`close_span`].
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard {
            id: 0,
            start_us: 0,
            name,
        };
    }
    open_span(name)
}

#[cold]
#[inline(never)]
fn open_span(name: &'static str) -> SpanGuard {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    THREAD.with(|cell| cell.borrow_mut().stack.push(id));
    SpanGuard {
        id,
        start_us: now_us(),
        name,
    }
}

/// A `(trace, parent)` capture for continuing a trace on another thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// The trace id (0 = none).
    pub trace: u64,
    /// The span the continuation nests under (0 = trace root).
    pub parent: u64,
}

/// Captures the calling thread's active trace and innermost open span.
pub fn current_context() -> TraceContext {
    if !enabled() {
        return TraceContext::default();
    }
    THREAD.with(|cell| {
        let state = cell.borrow();
        TraceContext {
            trace: state.trace,
            parent: state.stack.last().copied().unwrap_or(state.base_parent),
        }
    })
}

/// Restores the previous thread trace state on drop.
pub struct TraceGuard {
    prev_trace: u64,
    prev_base: u64,
    active: bool,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        THREAD.with(|cell| {
            let mut state = cell.borrow_mut();
            // Anything recorded under the entered trace publishes now —
            // the thread may never flush again (pool threads park).
            if state.stack.is_empty() {
                flush_buf(&mut state.buf);
            }
            state.trace = self.prev_trace;
            state.base_parent = self.prev_base;
        });
    }
}

/// Makes `ctx` the calling thread's active trace until the guard drops:
/// spans opened meanwhile belong to `ctx.trace` and root under
/// `ctx.parent`.  Used by the service worker for the request root and by
/// fan-out workers to continue the request's trace.
pub fn enter_trace(ctx: TraceContext) -> TraceGuard {
    if !enabled() {
        return TraceGuard {
            prev_trace: 0,
            prev_base: 0,
            active: false,
        };
    }
    THREAD.with(|cell| {
        let mut state = cell.borrow_mut();
        let guard = TraceGuard {
            prev_trace: state.trace,
            prev_base: state.base_parent,
            active: true,
        };
        state.trace = ctx.trace;
        state.base_parent = ctx.parent;
        guard
    })
}

/// Process-wide trace-id allocator for requests that do not bring their
/// own.  Starts at 1 (trace 0 is the free-span bucket) and never reuses
/// an id, so two servers in one process cannot cross-contaminate each
/// other's span buckets.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh process-unique trace id.
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Records an already-elapsed span (e.g. queue-wait measured between two
/// instants on different threads).  Returns the span id, 0 when disabled.
pub fn record_manual(
    name: &'static str,
    trace: u64,
    parent: u64,
    start_us: u64,
    end_us: u64,
) -> u64 {
    if !enabled() {
        return 0;
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let record = SpanRecord {
        trace,
        id,
        parent,
        name,
        start_us,
        dur_us: end_us.saturating_sub(start_us),
    };
    flush_buf(&mut vec![record]);
    id
}

/// Moves a completed trace's spans into the bounded retained set (the
/// slow-request log).  Oldest retained traces are evicted FIFO.
pub fn retain_trace(trace: u64) {
    if trace == 0 {
        return;
    }
    let mut sink = sink().lock().expect("span sink");
    let Some(spans) = sink.live.remove(&trace) else {
        return;
    };
    if let Some(slot) = sink.retained.iter_mut().find(|(t, _)| *t == trace) {
        slot.1.extend(spans);
        return;
    }
    if sink.retained.len() >= RETAINED_TRACES_CAP {
        let (_, evicted) = sink.retained.remove(0);
        sink.dropped += evicted.len() as u64;
    }
    sink.retained.push((trace, spans));
}

/// Drops a completed trace's spans (the fast-request path).
pub fn discard_trace(trace: u64) {
    if trace == 0 {
        return;
    }
    let mut sink = sink().lock().expect("span sink");
    if let Some(spans) = sink.live.remove(&trace) {
        sink.dropped += spans.len() as u64;
    }
}

/// A retained (or still-live) trace's spans, sorted by start time.
/// `None` when the trace was never recorded or already dropped.
pub fn trace_spans(trace: u64) -> Option<Vec<SpanRecord>> {
    let sink = sink().lock().expect("span sink");
    let spans = sink
        .retained
        .iter()
        .find(|(t, _)| *t == trace)
        .map(|(_, s)| s.clone())
        .or_else(|| sink.live.get(&trace).cloned())?;
    let mut spans = spans;
    spans.sort_by_key(|s| (s.start_us, s.id));
    Some(spans)
}

/// Drains every recorded span — free ring, live buckets and retained
/// traces — sorted by start time.  The whole-run consumer
/// (`reproduce -- profile`'s Chrome trace dump).
pub fn drain_all() -> Vec<SpanRecord> {
    let mut sink = sink().lock().expect("span sink");
    let mut all: Vec<SpanRecord> = sink.ring.drain(..).collect();
    for (_, spans) in sink.live.drain() {
        all.extend(spans);
    }
    for (_, spans) in sink.retained.drain(..) {
        all.extend(spans);
    }
    all.sort_by_key(|s| (s.start_us, s.id));
    all
}

/// Spans dropped at capacity so far (ring overwrites, bucket caps,
/// retained-trace evictions and discards).
pub fn dropped_spans() -> u64 {
    sink().lock().expect("span sink").dropped
}

/// One node of a reassembled span tree.
#[derive(Debug)]
pub struct SpanNode {
    /// The span itself.
    pub record: SpanRecord,
    /// Child spans, by start time.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn render_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{ \"name\": \"{}\", \"start_us\": {}, \"dur_us\": {}, \"children\": [",
            self.record.name, self.record.start_us, self.record.dur_us
        );
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            child.render_json(out);
        }
        out.push_str("] }");
    }
}

/// Reassembles flat records into root-level trees via the parent links.
/// Orphans (parent dropped at a cap) surface as roots rather than
/// disappearing.
pub fn build_tree(spans: &[SpanRecord]) -> Vec<SpanNode> {
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut nodes: FxHashMap<u64, SpanNode> = spans
        .iter()
        .map(|&record| {
            (
                record.id,
                SpanNode {
                    record,
                    children: Vec::new(),
                },
            )
        })
        .collect();
    // Attach children to parents deepest-first, so a node only moves into
    // its parent after its whole subtree is already attached to it.
    let parent_of: FxHashMap<u64, u64> = spans.iter().map(|s| (s.id, s.parent)).collect();
    let depth_of = |mut id: u64| -> usize {
        let mut depth = 0usize;
        while let Some(&parent) = parent_of.get(&id) {
            if parent == 0 || parent == id || !ids.contains(&parent) || depth > spans.len() {
                break;
            }
            depth += 1;
            id = parent;
        }
        depth
    };
    let mut order: Vec<u64> = spans.iter().map(|s| s.id).collect();
    order.sort_by_key(|&id| std::cmp::Reverse(depth_of(id)));
    let mut roots = Vec::new();
    for id in order {
        let parent = nodes[&id].record.parent;
        if parent != 0 && ids.contains(&parent) && parent != id {
            let node = nodes.remove(&id).expect("node");
            nodes
                .get_mut(&parent)
                .expect("parent node")
                .children
                .push(node);
        }
    }
    let mut remaining: Vec<SpanNode> = nodes.into_values().collect();
    remaining.sort_by_key(|n| (n.record.start_us, n.record.id));
    for mut node in remaining {
        sort_children(&mut node);
        roots.push(node);
    }
    roots
}

fn sort_children(node: &mut SpanNode) {
    node.children
        .sort_by_key(|n| (n.record.start_us, n.record.id));
    for child in &mut node.children {
        sort_children(child);
    }
}

/// Renders a span forest as hand-written JSON:
/// `[{"name": ..., "start_us": ..., "dur_us": ..., "children": [...]}]`.
pub fn tree_json(roots: &[SpanNode]) -> String {
    let mut out = String::from("[");
    for (i, root) in roots.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        root.render_json(&mut out);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises the tests in this module: they all toggle the global
    /// recorder.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().expect("test lock")
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _serial = lock();
        set_enabled(false);
        {
            let guard = span("test:disabled");
            assert_eq!(guard.id(), 0);
        }
        assert!(trace_spans(u64::MAX).is_none());
    }

    #[test]
    fn spans_nest_and_publish_at_the_trace_boundary() {
        let _serial = lock();
        set_enabled(true);
        let trace = 9_000_001;
        {
            let _t = enter_trace(TraceContext { trace, parent: 0 });
            let root = span("test:root");
            assert_ne!(root.id(), 0);
            {
                let _child = span("test:child");
                let _grandchild = span("test:grandchild");
            }
        }
        let spans = trace_spans(trace).expect("trace recorded");
        set_enabled(false);
        assert_eq!(spans.len(), 3);
        let root = spans.iter().find(|s| s.name == "test:root").expect("root");
        let child = spans
            .iter()
            .find(|s| s.name == "test:child")
            .expect("child");
        let grandchild = spans
            .iter()
            .find(|s| s.name == "test:grandchild")
            .expect("grandchild");
        assert_eq!(root.parent, 0);
        assert_eq!(child.parent, root.id);
        assert_eq!(grandchild.parent, child.id);
        assert!(root.dur_us >= child.dur_us);
        let tree = build_tree(&spans);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].record.name, "test:root");
        assert_eq!(tree[0].children.len(), 1);
        assert_eq!(tree[0].children[0].children.len(), 1);
        let json = tree_json(&tree);
        assert!(json.contains("\"name\": \"test:grandchild\""));
        discard_trace(trace);
    }

    #[test]
    fn a_trace_crosses_threads_through_its_context() {
        let _serial = lock();
        set_enabled(true);
        let trace = 9_000_002;
        {
            let _t = enter_trace(TraceContext { trace, parent: 0 });
            let root = span("test:xthread-root");
            let ctx = current_context();
            assert_eq!(ctx.trace, trace);
            assert_eq!(ctx.parent, root.id());
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let _t = enter_trace(ctx);
                    let _w = span("test:worker");
                });
            });
        }
        let spans = trace_spans(trace).expect("trace recorded");
        set_enabled(false);
        let root = spans
            .iter()
            .find(|s| s.name == "test:xthread-root")
            .expect("root");
        let worker = spans
            .iter()
            .find(|s| s.name == "test:worker")
            .expect("worker span crossed threads");
        assert_eq!(worker.parent, root.id);
        discard_trace(trace);
    }

    #[test]
    fn retain_then_discard_controls_the_slow_request_log() {
        let _serial = lock();
        set_enabled(true);
        let kept = 9_000_003;
        let dropped = 9_000_004;
        for trace in [kept, dropped] {
            let _t = enter_trace(TraceContext { trace, parent: 0 });
            let _s = span("test:request");
        }
        retain_trace(kept);
        discard_trace(dropped);
        set_enabled(false);
        assert!(trace_spans(kept).is_some());
        assert!(trace_spans(dropped).is_none());
        // Retained traces survive a later unrelated discard.
        discard_trace(kept + 17);
        assert!(trace_spans(kept).is_some());
    }

    #[test]
    fn manual_spans_carry_caller_supplied_bounds() {
        let _serial = lock();
        set_enabled(true);
        let trace = 9_000_005;
        let id = record_manual("test:manual", trace, 0, 100, 350);
        assert_ne!(id, 0);
        let spans = trace_spans(trace).expect("manual span recorded");
        set_enabled(false);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start_us, 100);
        assert_eq!(spans[0].dur_us, 250);
        discard_trace(trace);
    }
}
