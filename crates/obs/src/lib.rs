//! `tmg-obs` — hand-rolled observability for the WCET analysis toolchain.
//!
//! Three pieces, all dependency-free (std + the vendored `rustc-hash`):
//!
//! * [`span`] — a thread-local span recorder: monotonic enter/exit pairs
//!   with parent links and static names, near-zero cost when disabled
//!   (the default).  The pipeline stages, the checker's phases, the
//!   segment log's I/O and the service's request lifecycle are all
//!   instrumented with it, so a request decomposes into self-time per
//!   stage.
//! * [`registry`] — the unified [`MetricsRegistry`]: every scattered
//!   counter set (checker, module composition, latency histograms, tier
//!   counters) registers into it, and the service `stats` snapshot is
//!   assembled from its groups under the `tmg-obs-stats/v1` schema.
//! * [`histogram`] — the lock-free log₂-bucket [`Histogram`] the service's
//!   per-op latency tracking is built on, including lossless
//!   [`Histogram::merge`] aggregation.
//!
//! See `crates/obs/README.md` for the span model, the overhead contract
//! and the snapshot schema.

pub mod histogram;
pub mod registry;
pub mod span;

pub use histogram::Histogram;
pub use registry::{registry, MetricsRegistry};
pub use span::{
    build_tree, current_context, discard_trace, drain_all, dropped_spans, enabled, enter_trace,
    instant_us, next_trace_id, now_us, record_manual, retain_trace, set_enabled, span, trace_spans,
    tree_json, SpanGuard, SpanNode, SpanRecord, TraceContext, TraceGuard,
};
