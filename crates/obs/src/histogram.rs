//! Lock-free log₂-bucket latency histograms.
//!
//! Each [`Histogram`] buckets durations by the bit length of the
//! microsecond count (log₂ buckets), which is coarse but constant-time,
//! allocation-free, and good enough for the p50/p95/p99 the service
//! `stats` snapshot reports: a quantile answers with the *upper bound* of
//! the bucket it lands in, so reported percentiles never understate
//! latency.  [`Histogram::merge`] folds another histogram in
//! bucket-by-bucket, so per-connection (or per-shard) histograms
//! aggregate without losing bucket precision.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 40;

/// A fixed log₂-bucket latency histogram (atomic, shared by reference).
#[derive(Debug)]
pub struct Histogram {
    /// `buckets[i]` counts durations whose microsecond count has bit
    /// length `i`, i.e. the half-open range `(2^(i-1), 2^i]` µs.
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_of(us: u64) -> usize {
        ((u64::BITS - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one operation's duration.
    pub fn record(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Folds `other`'s recorded durations into `self`, bucket by bucket —
    /// the aggregate is exactly the histogram a single shared instance
    /// would have recorded (same bucket counts, same sum, hence the same
    /// quantiles and mean; nothing is re-bucketed through a coarser
    /// representation).  `other` is unchanged; a concurrent recorder on
    /// either side folds in whatever it had published at read time.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_us
            .fetch_add(other.sum_us.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Operations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum_us.load(Ordering::Relaxed) as f64 / count as f64 / 1000.0
    }

    /// The `q`-quantile (`0 < q <= 1`) in milliseconds: the upper bound of
    /// the bucket holding the target rank, 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                // Bucket i covers (2^(i-1), 2^i] µs; bucket 0 is exactly 0.
                let upper_us = if i == 0 { 0u64 } else { 1u64 << i };
                return upper_us as f64 / 1000.0;
            }
        }
        0.0
    }

    /// Renders `{"count": N, "mean_ms": ..., "p50_ms": ..., ...}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"count\": {}, \"mean_ms\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3} }}",
            self.count(),
            self.mean_ms(),
            self.quantile_ms(0.50),
            self.quantile_ms(0.95),
            self.quantile_ms(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = Histogram::default();
        for ms in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 10);
        // 1 ms = 1000 µs → bucket 10, upper bound 1024 µs = 1.024 ms.
        assert_eq!(h.quantile_ms(0.50), 1.024);
        assert_eq!(h.quantile_ms(0.90), 1.024);
        // 100 ms = 100_000 µs → bucket 17, upper bound 131.072 ms.
        assert_eq!(h.quantile_ms(0.99), 131.072);
        assert!(h.quantile_ms(0.99) >= h.quantile_ms(0.50));
        assert!((h.mean_ms() - 10.9).abs() < 0.1);
    }

    #[test]
    fn an_empty_histogram_answers_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.quantile_ms(0.99), 0.0);
        assert!(h.to_json().contains("\"count\": 0"));
    }

    #[test]
    fn merge_equals_recording_into_one_shared_histogram() {
        let shared = Histogram::default();
        let a = Histogram::default();
        let b = Histogram::default();
        let durations_a = [1u64, 3, 900, 1_000, 12_000];
        let durations_b = [2u64, 2, 450_000, 7];
        for us in durations_a {
            shared.record(Duration::from_micros(us));
            a.record(Duration::from_micros(us));
        }
        for us in durations_b {
            shared.record(Duration::from_micros(us));
            b.record(Duration::from_micros(us));
        }
        let merged = Histogram::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.count(), shared.count());
        assert_eq!(merged.mean_ms(), shared.mean_ms());
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(merged.quantile_ms(q), shared.quantile_ms(q), "q={q}");
        }
        assert_eq!(merged.to_json(), shared.to_json());
        // The sources are unchanged.
        assert_eq!(a.count(), durations_a.len() as u64);
        assert_eq!(b.count(), durations_b.len() as u64);
    }

    #[test]
    fn merging_an_empty_histogram_is_the_identity() {
        let h = Histogram::default();
        h.record(Duration::from_micros(64));
        let before = h.to_json();
        h.merge(&Histogram::default());
        assert_eq!(h.to_json(), before);
    }
}
