//! Property-based equivalence of the multi-query engine and the single-query
//! arena search: for random mini-C functions and random decision queries,
//! [`ModelChecker::check_many`] must return the same feasibility verdict as
//! per-query [`ModelChecker::find_test_data`], and every witness must replay
//! on the interpreter to the queried path.
//!
//! Functions are generated from integer draws only (the vendored proptest
//! supports integer-range strategies); conditions read function parameters
//! exclusively (plus explicitly initialised loop counters), so a witness
//! fully determines the execution path and interpreter replay is exact.

use proptest::prelude::*;
use tmg_cfg::{build_cfg, enumerate_region_paths, PathSpec};
use tmg_minic::ast::StmtId;
use tmg_minic::interp::BranchChoice;
use tmg_minic::{parse_function, parse_program, Interpreter};
use tmg_tsys::{CheckOutcome, ModelChecker, PathQuery};

/// The checker's path-monitor acceptance, replayed over an execution trace:
/// decisions at the next expected statement must take the expected choice
/// (anything else kills the run), decisions elsewhere are ignored, and the
/// trace is accepted once every queried decision has been matched.
fn monitor_accepts(decisions: &[(StmtId, BranchChoice)], trace: &[(StmtId, BranchChoice)]) -> bool {
    let mut matched = 0;
    for &(stmt, choice) in trace {
        if matched == decisions.len() {
            break;
        }
        let (expected_stmt, expected_choice) = decisions[matched];
        if stmt == expected_stmt {
            if choice == expected_choice {
                matched += 1;
            } else {
                return false;
            }
        }
    }
    matched == decisions.len()
}

/// Deterministic draw stream decoding one `u64` seed into small choices.
struct Draws(u64);

impl Draws {
    fn next(&mut self, n: u64) -> u64 {
        let v = self.0 % n;
        // Rotate so later draws do not correlate with earlier ones once the
        // seed runs short of entropy.
        self.0 = (self.0 / n).rotate_left(17) ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        v
    }
}

/// Builds a random mini-C function whose control flow depends only on the
/// two parameters `a` (domain `0..=a_hi`) and `b` (domain `0..=b_hi`).
fn random_function(shape: u64, a_hi: i64, b_hi: i64) -> String {
    let mut d = Draws(shape);
    let stmt_count = 2 + d.next(3); // 2..=4 branching statements
    let mut body = String::new();
    let mut decls = String::new();
    for k in 0..stmt_count {
        let var = if d.next(2) == 0 { "a" } else { "b" };
        let hi = if var == "a" { a_hi } else { b_hi };
        // Literals may sit just outside the domain, producing always-false
        // (infeasible-path) and always-true guards on purpose.
        let lit = d.next((hi + 2) as u64) as i64 - 1;
        match d.next(4) {
            0 => body.push_str(&format!("    if ({var} > {lit}) {{ c{k}(); }}\n")),
            1 => body.push_str(&format!(
                "    if ({var} == {lit}) {{ t{k}(); }} else {{ e{k}(); }}\n"
            )),
            2 => {
                let case = 1 + d.next(hi.max(1) as u64);
                body.push_str(&format!(
                    "    switch ({var}) {{ case 0: s{k}a(); break; case {case}: s{k}b(); break; default: s{k}d(); break; }}\n"
                ));
            }
            _ => {
                decls.push_str(&format!("    char i{k} = 0;\n"));
                body.push_str(&format!(
                    "    while (i{k} < {var}) __bound(6) {{ i{k} = i{k} + 1; }}\n"
                ));
            }
        }
    }
    format!("void f(char a __range(0, {a_hi}), char b __range(0, {b_hi})) {{\n{decls}{body}}}\n")
}

/// Derives the query batch from the enumerated region paths: the full paths
/// themselves plus random prefixes, subsequences and wrong-choice mutants
/// (which exercise dead monitors and infeasible verdicts).
fn random_queries(paths: &[PathSpec], shape: u64) -> Vec<PathQuery> {
    let mut d = Draws(shape);
    let mut queries: Vec<PathQuery> = Vec::new();
    for path in paths {
        queries.push(PathQuery::new(path.decisions.clone()));
        let n = path.decisions.len();
        if n == 0 {
            continue;
        }
        match d.next(3) {
            0 => {
                // Random proper prefix.
                let cut = d.next(n as u64) as usize;
                queries.push(PathQuery::new(path.decisions[..cut].to_vec()));
            }
            1 => {
                // Subsequence: every other decision (the monitor must cope
                // with gaps between expected statements).
                let sub: Vec<(StmtId, BranchChoice)> =
                    path.decisions.iter().step_by(2).copied().collect();
                queries.push(PathQuery::new(sub));
            }
            _ => {
                // Flip one choice, often making the sequence infeasible.
                let mut mutant = path.decisions.clone();
                let at = d.next(n as u64) as usize;
                mutant[at].1 = match mutant[at].1 {
                    BranchChoice::Then => BranchChoice::Else,
                    BranchChoice::Else => BranchChoice::Then,
                    BranchChoice::Case(_) => BranchChoice::Default,
                    BranchChoice::Default => BranchChoice::Case(0),
                    BranchChoice::LoopIterate => BranchChoice::LoopExit,
                    BranchChoice::LoopExit => BranchChoice::LoopIterate,
                };
                queries.push(PathQuery::new(mutant));
            }
        }
    }
    queries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn multiquery_agrees_with_single_query_and_witnesses_replay(
        shape in 0u64..u64::MAX,
        query_shape in 0u64..u64::MAX,
        a_hi in 1i64..6,
        b_hi in 1i64..6,
    ) {
        let src = random_function(shape, a_hi, b_hi);
        let f = parse_function(&src).expect("generated function parses");
        let lowered = build_cfg(&f);
        let Some(paths) =
            enumerate_region_paths(&lowered.cfg, lowered.regions.root(), 192)
        else {
            // Path count above the enumeration cap — skip to the next case.
            continue;
        };
        let queries = random_queries(&paths, query_shape);
        let checker = ModelChecker::new();
        let batched = checker.check_many(&f, &queries);
        prop_assert_eq!(batched.len(), queries.len());
        let program = parse_program(&src).expect("program parses");
        let interp = Interpreter::new(&program);
        for (query, result) in queries.iter().zip(&batched) {
            let single = checker.find_test_data(&f, query);
            prop_assert_eq!(
                &result.outcome, &single.outcome,
                "batched vs single verdict on {} for {:?}", src, query.decisions
            );
            if let CheckOutcome::Feasible { witness, .. } = &result.outcome {
                // The witness must drive the interpreter down the queried
                // decision sequence (under the checker's monitor semantics:
                // decisions at unexpected statements are skipped, which is
                // weaker than `PathSpec::matches_trace`'s contiguous window).
                let run = interp.run("f", witness).expect("witness replays");
                prop_assert!(
                    monitor_accepts(&query.decisions, &run.trace.branch_signature()),
                    "witness {:?} does not follow {:?} in {}",
                    witness, query.decisions, src
                );
            }
        }
    }
}
