//! Property-based equivalence of cone-of-influence slicing: for random
//! mini-C functions and random *partial* query batches (the case where the
//! slice actually removes something), batched [`ModelChecker::check_many`] —
//! which slices, explores the sliced model and completes witnesses against
//! the full model — must return the same verdict as the unsliced per-query
//! [`ModelChecker::find_test_data`], every witness must replay on the
//! interpreter under full-model monitor semantics, and slicing must be
//! idempotent (slicing a slice changes nothing).
//!
//! The generated functions deliberately contain what slicing exists to
//! remove: branches over wide-domain parameters nobody queries, dead
//! accumulator assignments, and saturation guards that chain those
//! accumulators back into the cone.

use proptest::prelude::*;
use std::collections::HashSet;
use tmg_minic::ast::{Stmt, StmtId};
use tmg_minic::interp::BranchChoice;
use tmg_minic::{parse_function, parse_program, Interpreter};
use tmg_tsys::{slice_for_queries, CheckOutcome, ModelChecker, PathQuery};

/// The checker's path-monitor acceptance, replayed over an execution trace.
fn monitor_accepts(decisions: &[(StmtId, BranchChoice)], trace: &[(StmtId, BranchChoice)]) -> bool {
    let mut matched = 0;
    for &(stmt, choice) in trace {
        if matched == decisions.len() {
            break;
        }
        let (expected_stmt, expected_choice) = decisions[matched];
        if stmt == expected_stmt {
            if choice == expected_choice {
                matched += 1;
            } else {
                return false;
            }
        }
    }
    matched == decisions.len()
}

/// Deterministic draw stream decoding one `u64` seed into small choices.
struct Draws(u64);

impl Draws {
    fn next(&mut self, n: u64) -> u64 {
        let v = self.0 % n;
        self.0 = (self.0 / n).rotate_left(17) ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        v
    }
}

/// Builds a random function with sliceable structure: guards over the small
/// parameters `a`/`b`, independent branches over the wide parameters
/// `w0`/`w1`, dead accumulator writes, and occasionally a saturation guard
/// that makes an accumulator (and everything feeding it) relevant.
fn random_function(shape: u64) -> String {
    let mut d = Draws(shape);
    let stmt_count = 3 + d.next(3); // 3..=5 statements
    let mut body = String::new();
    let mut decls = String::from("    int acc = 0;\n    int dead = 0;\n");
    for k in 0..stmt_count {
        match d.next(6) {
            0 => {
                let lit = d.next(6) as i64 - 1;
                body.push_str(&format!(
                    "    if (a > {lit}) {{ t{k}(); }} else {{ e{k}(); }}\n"
                ));
            }
            1 => {
                let lit = d.next(6) as i64;
                body.push_str(&format!("    if (b == {lit}) {{ h{k}(); }}\n"));
            }
            2 => {
                // Wide-domain branch slicing should drop when unqueried.
                let w = if d.next(2) == 0 { "w0" } else { "w1" };
                let lit = d.next(200) as i64;
                body.push_str(&format!(
                    "    if ({w} > {lit}) {{ wf{k}(); }} else {{ ws{k}(); }}\n"
                ));
            }
            3 => {
                // Dead accumulator chain (unless a later saturation guard
                // pulls it back in).
                let w = if d.next(2) == 0 { "w0" } else { "w1" };
                body.push_str(&format!("    acc = acc + {w};\n    dead = dead + 1;\n"));
            }
            4 => {
                let lit = 20 + d.next(120) as i64;
                body.push_str(&format!("    if (acc > {lit}) {{ sat{k}(); }}\n"));
            }
            _ => {
                decls.push_str(&format!("    char i{k} = 0;\n"));
                body.push_str(&format!(
                    "    while (i{k} < b) __bound(4) {{ i{k} = i{k} + 1; }}\n"
                ));
            }
        }
    }
    format!(
        "void f(char a __range(0, 4), char b __range(0, 5), int w0 __range(0, 180), int w1 __range(-90, 90)) {{\n{decls}{body}}}\n"
    )
}

/// Queries over a *subset* of the function's branch statements — single
/// decisions and two-decision sequences — so the batch union rarely covers
/// every branch and slicing has something to remove.
fn random_queries(f: &tmg_minic::Function, shape: u64) -> Vec<PathQuery> {
    let mut branches: Vec<(StmtId, bool)> = Vec::new(); // (id, is_loop)
    f.for_each_stmt(&mut |s| match s {
        Stmt::If { id, .. } => branches.push((*id, false)),
        Stmt::While { id, .. } => branches.push((*id, true)),
        _ => {}
    });
    if branches.is_empty() {
        return vec![PathQuery::any_execution()];
    }
    let mut d = Draws(shape);
    let choice = |d: &mut Draws, is_loop: bool| {
        if is_loop {
            if d.next(2) == 0 {
                BranchChoice::LoopIterate
            } else {
                BranchChoice::LoopExit
            }
        } else if d.next(2) == 0 {
            BranchChoice::Then
        } else {
            BranchChoice::Else
        }
    };
    let mut queries = Vec::new();
    let count = 1 + d.next(4) as usize;
    for _ in 0..count {
        let (first, first_loop) = branches[d.next(branches.len() as u64) as usize];
        let mut decisions = vec![(first, choice(&mut d, first_loop))];
        if d.next(2) == 0 {
            let (second, second_loop) = branches[d.next(branches.len() as u64) as usize];
            if second != first {
                decisions.push((second, choice(&mut d, second_loop)));
            }
        }
        queries.push(PathQuery::new(decisions));
    }
    queries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn sliced_batches_agree_with_unsliced_single_queries(
        shape in 0u64..u64::MAX,
        query_shape in 0u64..u64::MAX,
    ) {
        let src = random_function(shape);
        let f = parse_function(&src).expect("generated function parses");
        let queries = random_queries(&f, query_shape);
        let union: HashSet<StmtId> = queries
            .iter()
            .flat_map(|q| q.stmts().iter().copied())
            .collect();

        // Idempotence: slicing a slice changes nothing.
        if let Some((sliced_fn, _)) = slice_for_queries(&f, &union) {
            prop_assert!(
                slice_for_queries(&sliced_fn, &union).is_none(),
                "slicing must be idempotent on {src}"
            );
        }

        let sliced = ModelChecker::new();
        let unsliced = ModelChecker::new().with_slicing(false);
        let batched = sliced.check_many(&f, &queries);
        let program = parse_program(&src).expect("program parses");
        let interp = Interpreter::new(&program);
        for (query, result) in queries.iter().zip(&batched) {
            // Verdict bit-identity against the unsliced per-query reference.
            let single = unsliced.find_test_data(&f, query);
            prop_assert_eq!(
                std::mem::discriminant(&result.outcome),
                std::mem::discriminant(&single.outcome),
                "sliced batched vs unsliced single verdict on {} for {:?}: {:?} vs {:?}",
                src, query.decisions, result.outcome, single.outcome
            );
            // Witness completion: the slice's witness was completed against
            // the full model, so it must drive the *full* program down the
            // queried decisions (oracle replay under monitor semantics).
            if let CheckOutcome::Feasible { witness, .. } = &result.outcome {
                let run = interp.run("f", witness).expect("witness replays");
                prop_assert!(
                    monitor_accepts(&query.decisions, &run.trace.branch_signature()),
                    "completed witness {:?} does not follow {:?} in {}",
                    witness, query.decisions, src
                );
            }
        }
    }
}
