//! Determinism of the sharded parallel explorer: the same heavy batch run
//! at 1, 2 and 8 worker threads must produce bit-identical verdicts,
//! witnesses and step counts — one thread takes the pure sequential path,
//! so this also pins the sharded reduction against the sequential
//! semantics.  Feasible witnesses are additionally oracle-replayed on the
//! interpreter under monitor semantics.

use tmg_cfg::{build_cfg, enumerate_region_paths};
use tmg_minic::ast::StmtId;
use tmg_minic::interp::BranchChoice;
use tmg_minic::{parse_function, parse_program, Interpreter};
use tmg_tsys::{
    encode_function, CheckOutcome, ModelChecker, MultiQueryEngine, Optimisations, PathQuery,
    PreparedModel,
};

/// The checker's path-monitor acceptance, replayed over an execution trace.
fn monitor_accepts(decisions: &[(StmtId, BranchChoice)], trace: &[(StmtId, BranchChoice)]) -> bool {
    let mut matched = 0;
    for &(stmt, choice) in trace {
        if matched == decisions.len() {
            break;
        }
        let (expected_stmt, expected_choice) = decisions[matched];
        if stmt == expected_stmt {
            if choice == expected_choice {
                matched += 1;
            } else {
                return false;
            }
        }
    }
    matched == decisions.len()
}

/// A batch wide enough to trip the shard trigger: a 20001-value split at the
/// first guard plus enough branching for a few dozen queries.
const HEAVY_SRC: &str = r#"
    void f(int key __range(0, 20000), char mode __range(0, 5), char gate __range(0, 1)) {
        if (key == 1234) { hit1(); }
        if (key == 8190) { hit2(); }
        if (key == 19999) { hit3(); }
        if (mode > 3) { fast(); } else { slow(); }
        if (mode == 2 && gate) { gated(); }
        if (key < 0) { never(); }
    }
"#;

fn heavy_batch() -> (tmg_minic::Function, Vec<PathQuery>) {
    let f = parse_function(HEAVY_SRC).expect("parse");
    let lowered = build_cfg(&f);
    let paths =
        enumerate_region_paths(&lowered.cfg, lowered.regions.root(), 10_000).expect("paths");
    let queries = paths
        .into_iter()
        .map(|p| PathQuery::new(p.decisions))
        .collect();
    (f, queries)
}

fn outcomes_at(
    checker: &ModelChecker,
    prepared: &PreparedModel<'_>,
    queries: &[PathQuery],
    threads: usize,
) -> Vec<Option<CheckOutcome>> {
    let engine = MultiQueryEngine::explore_with_threads(checker, prepared, queries, threads);
    (0..queries.len()).map(|q| engine.outcome(q)).collect()
}

#[test]
fn verdicts_witnesses_and_steps_are_identical_across_thread_counts() {
    let (f, queries) = heavy_batch();
    assert!(queries.len() >= 32, "batch should be heavy");
    let checker = ModelChecker::new();
    let model = encode_function(&f, &Optimisations::all().encode_options());
    let prepared = PreparedModel::new(&model);
    let reference = outcomes_at(&checker, &prepared, &queries, 1);
    assert!(
        reference.iter().all(|o| o.is_some()),
        "the heavy batch settles within budget"
    );
    for threads in [2, 8] {
        let outcomes = outcomes_at(&checker, &prepared, &queries, threads);
        // Bit-identical: verdicts, witness vectors and step counts.
        assert_eq!(
            outcomes, reference,
            "{threads}-thread exploration diverges from the sequential path"
        );
    }
    // Oracle replay: every feasible witness drives the interpreter down its
    // queried decision sequence.
    let program = parse_program(HEAVY_SRC).expect("parse");
    let interp = Interpreter::new(&program);
    let mut feasible = 0;
    for (query, outcome) in queries.iter().zip(&reference) {
        if let Some(CheckOutcome::Feasible { witness, .. }) = outcome {
            feasible += 1;
            let run = interp.run("f", witness).expect("witness replays");
            assert!(
                monitor_accepts(&query.decisions, &run.trace.branch_signature()),
                "witness {witness:?} does not follow {:?}",
                query.decisions
            );
        }
    }
    assert!(feasible >= 8, "the heavy batch has feasible paths");
}

#[test]
fn budget_bound_batches_certify_identically_across_thread_counts() {
    // A budget too small to settle the space: every thread count must
    // certify the same Unknowns (exact attributed-op accounting across the
    // shard reduction).
    let (f, queries) = heavy_batch();
    let tight = ModelChecker::new().with_budget(200_000);
    let model = encode_function(&f, &Optimisations::all().encode_options());
    let prepared = PreparedModel::new(&model);
    let reference = outcomes_at(&tight, &prepared, &queries, 1);
    for threads in [2, 8] {
        let outcomes = outcomes_at(&tight, &prepared, &queries, threads);
        assert_eq!(
            outcomes, reference,
            "{threads}-thread budget accounting diverges from sequential"
        );
    }
    assert!(
        reference
            .iter()
            .any(|o| matches!(o, Some(CheckOutcome::Unknown))),
        "the tight budget should leave certified Unknowns"
    );
}

#[test]
fn check_many_matches_per_query_search_on_the_heavy_batch() {
    // End-to-end: the public batch entry point (slicing + sharding + witness
    // completion) against the per-query reference engine.
    let (f, queries) = heavy_batch();
    let checker = ModelChecker::new();
    let batched = checker.check_many(&f, &queries);
    for (query, result) in queries.iter().zip(&batched) {
        let single = checker.find_test_data(&f, query);
        assert_eq!(
            result.outcome, single.outcome,
            "batched vs single on {:?}",
            query.decisions
        );
    }
}
