//! The six state-space optimisations of Section 3.2.
//!
//! Four of them are source-to-source transformations on the analysed function
//! (the model is built from the transformed source):
//!
//! * **Reverse CSE** (3.2.1) — single-assignment temporaries are replaced by
//!   their defining expressions and disappear from the state vector.
//! * **Live-variable analysis** (3.2.2) — variables that are never read are
//!   dropped, and locals with disjoint lifetimes share one memory location.
//! * **Variable initialisation** (3.2.5) — locals without an initialiser get
//!   one, shrinking the set of initial states `D_I`.
//! * **Dead variable and code elimination** (3.2.6) — variables (and the code
//!   manipulating them) that cannot influence control flow are removed.
//!
//! The other two live in the encoder ([`crate::encode`]) because they concern
//! the model rather than the source: **variable range analysis** (3.2.4) and
//! **statement concatenation** (3.2.3).  [`Optimisations`] carries the flags
//! for all six so a single switchboard drives the Table-2 ablation.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use tmg_minic::ast::{for_each_stmt_in_block_mut, Block, Expr, Function, Stmt, StmtId};
use tmg_minic::types::Ty;

use crate::encode::EncodeOptions;

/// Switchboard for the six optimisations of Section 3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Optimisations {
    /// Reverse common-subexpression elimination (3.2.1).
    pub reverse_cse: bool,
    /// Live-variable analysis and memory-location sharing (3.2.2).
    pub live_variable_analysis: bool,
    /// Statement concatenation (3.2.3).
    pub statement_concatenation: bool,
    /// Variable range analysis (3.2.4).
    pub variable_range_analysis: bool,
    /// Variable initialisation (3.2.5).
    pub variable_initialisation: bool,
    /// Dead variable and code elimination (3.2.6).
    pub dead_code_elimination: bool,
}

impl Optimisations {
    /// No optimisation at all (the paper's "unoptimized" row).
    pub fn none() -> Optimisations {
        Optimisations {
            reverse_cse: false,
            live_variable_analysis: false,
            statement_concatenation: false,
            variable_range_analysis: false,
            variable_initialisation: false,
            dead_code_elimination: false,
        }
    }

    /// Every optimisation enabled (the paper's "all optimisations used" row).
    pub fn all() -> Optimisations {
        Optimisations {
            reverse_cse: true,
            live_variable_analysis: true,
            statement_concatenation: true,
            variable_range_analysis: true,
            variable_initialisation: true,
            dead_code_elimination: true,
        }
    }

    /// The encoder options implied by these flags.
    pub fn encode_options(&self) -> EncodeOptions {
        EncodeOptions {
            range_analysis: self.variable_range_analysis,
            concat_statements: self.statement_concatenation,
        }
    }

    /// Human-readable names of the enabled optimisations.
    pub fn enabled_names(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.reverse_cse {
            out.push("reverse CSE");
        }
        if self.live_variable_analysis {
            out.push("live-variable analysis");
        }
        if self.statement_concatenation {
            out.push("statement concatenation");
        }
        if self.variable_range_analysis {
            out.push("variable range analysis");
        }
        if self.variable_initialisation {
            out.push("variable initialisation");
        }
        if self.dead_code_elimination {
            out.push("dead variable and code elimination");
        }
        out
    }
}

impl Default for Optimisations {
    fn default() -> Self {
        Optimisations::all()
    }
}

/// What the source-level passes did; reported alongside checking statistics
/// in the Table-2 reproduction.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptReport {
    /// Temporaries substituted away by reverse CSE.
    pub substituted_temps: Vec<String>,
    /// Variables removed because they are never read (live-variable analysis)
    /// or cannot influence control flow (dead-variable elimination).
    pub removed_vars: Vec<String>,
    /// `(kept, merged-away)` pairs of locals now sharing one location.
    pub merged_vars: Vec<(String, String)>,
    /// Locals that received a synthetic initialiser.
    pub initialised_vars: Vec<String>,
    /// Number of statements removed from the model source.
    pub removed_stmts: usize,
}

/// Applies the enabled source-level optimisations to a copy of `function`.
///
/// Dead-code elimination may remove whole branch statements whose bodies only
/// manipulate variables that cannot influence control flow; use
/// [`apply_optimisations_preserving`] to keep the statements a path query
/// refers to.
pub fn apply_optimisations(function: &Function, opts: &Optimisations) -> (Function, OptReport) {
    apply_optimisations_preserving(function, opts, &HashSet::new())
}

/// Like [`apply_optimisations`] but never removes or rewrites the statements
/// listed in `preserve` (used by the checker so the branches mentioned in a
/// path query survive dead-code elimination).
pub fn apply_optimisations_preserving(
    function: &Function,
    opts: &Optimisations,
    preserve: &HashSet<StmtId>,
) -> (Function, OptReport) {
    let mut f = function.clone();
    let mut report = OptReport::default();
    if opts.dead_code_elimination {
        dead_code_elimination(&mut f, preserve, &mut report);
    }
    if opts.reverse_cse {
        reverse_cse(&mut f, &mut report);
    }
    if opts.live_variable_analysis {
        live_variable_analysis(&mut f, &mut report);
    }
    if opts.variable_initialisation {
        variable_initialisation(&mut f, &mut report);
    }
    (f, report)
}

/// Computes the optimised function shared by a *batch* of path queries, or
/// `None` when no single optimised function serves them all.
///
/// [`ModelChecker::find_test_data`](crate::ModelChecker::find_test_data)
/// optimises per query with `preserve = query.stmts()`, so a batch can only
/// share one exploration if every per-query preserve set yields the same
/// optimised source.  The preserve set feeds exactly one pass — dead-code
/// elimination — and only through per-statement predicates of the form
/// `!preserve.contains(id) && cond(stmt)`, where `cond` does not depend on
/// `preserve` (path queries name branch statements only, and the
/// assignment-removal predicate's relevant-variable set is preserve-free).
/// Removal sets are therefore anti-monotone in the preserve set: if the empty
/// set and `union` produce identical functions, every per-query subset of
/// `union` does too, and that function is returned.  A difference means some
/// queried branch only survives *because* it is queried (an empty-bodied
/// branch after dead-assignment removal); such batches are rejected and the
/// caller falls back to per-query checking.
pub fn shared_optimisation_for_queries(
    function: &Function,
    opts: &Optimisations,
    union: &HashSet<StmtId>,
) -> Option<(Function, OptReport)> {
    let (with_union, report) = apply_optimisations_preserving(function, opts, union);
    if !union.is_empty() {
        let (with_none, _) = apply_optimisations(function, opts);
        if with_none != with_union {
            return None;
        }
    }
    Some((with_union, report))
}

// ---------------------------------------------------------------------------
// Cone-of-influence slicing (query-batch-aware reduction)
// ---------------------------------------------------------------------------

/// What the cone-of-influence slice removed for one query batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SliceReport {
    /// Statements removed (assignments and whole branch statements together
    /// with everything inside them).
    pub removed_stmts: usize,
    /// Locals whose every mention was removed (their state dimensions
    /// disappear from the encoded model).
    pub removed_vars: Vec<String>,
    /// Inputs whose entry value can affect a kept guard
    /// ([`tmg_cfg::ConeOfInfluence::entry_live`]): the ones a sliced witness
    /// genuinely constrains.  The checker pins exactly these when completing
    /// the witness against the full model.
    pub constrained_inputs: HashSet<String>,
}

/// Slices `function` to the cone of influence of a path-query batch whose
/// statement union is `union`: statements and locals that can affect neither
/// the queried decisions nor any guard those decisions (transitively) depend
/// on are removed ([`tmg_cfg::cone_of_influence`] computes the set).
///
/// Returns `None` when the cone covers the whole function — the caller
/// should keep using its full (usually cached) model, paying nothing.
/// Function parameters always survive, so a witness found on the slice
/// assigns every input of the full model.
///
/// The sliced function preserves every covered query's *verdict*: a dropped
/// branch has no kept statement and no `return` in any arm (so all runs
/// rejoin identically), dropped assignments feed no kept guard, dropped
/// expressions cannot fault, and `while` loops are never dropped — hence for
/// any input vector the kept guards evaluate identically with and without
/// the dropped code, and the monitors (which watch statements inside `union`,
/// all of them kept) make identical progress.  Witness *vectors* are
/// completed against the full model by the caller
/// ([`crate::ModelChecker::check_many_shared`] re-searches the full model
/// with the slice's relevant inputs pinned), so reported witnesses and step
/// counts are full-model-consistent.
pub fn slice_for_queries(
    function: &Function,
    union: &HashSet<StmtId>,
) -> Option<(Function, SliceReport)> {
    let cone = tmg_cfg::cone_of_influence(function, union);
    if !cone.drops_anything() {
        return None;
    }
    let mut f = function.clone();
    let mut removed_stmts = 0usize;
    retain_cone(&mut f.body, &cone.keep, &mut removed_stmts);
    let dropped: HashSet<&String> = cone.droppable_locals.iter().collect();
    f.locals.retain(|l| !dropped.contains(&l.name));
    Some((
        f,
        SliceReport {
            removed_stmts,
            removed_vars: cone.droppable_locals.clone(),
            constrained_inputs: cone.entry_live,
        },
    ))
}

/// Number of statements in `stmt` including everything nested inside it
/// (so a dropped branch reports the full size of the code it removes).
fn deep_stmt_count(stmt: &Stmt) -> usize {
    fn block_count(block: &Block) -> usize {
        block.stmts.iter().map(deep_stmt_count).sum()
    }
    1 + match stmt {
        Stmt::Assign { .. } | Stmt::Call { .. } | Stmt::Return { .. } => 0,
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => block_count(then_branch) + else_branch.as_ref().map(block_count).unwrap_or(0),
        Stmt::Switch { cases, default, .. } => {
            cases.iter().map(|c| block_count(&c.body)).sum::<usize>()
                + default.as_ref().map(block_count).unwrap_or(0)
        }
        Stmt::While { body, .. } => block_count(body),
    }
}

/// Drops every assignment and branch statement outside `keep` (branches go
/// with their whole bodies; calls and returns always survive).
fn retain_cone(block: &mut Block, keep: &HashSet<StmtId>, removed: &mut usize) {
    let dropped: usize = block
        .stmts
        .iter()
        .filter(|s| match s {
            Stmt::Call { .. } | Stmt::Return { .. } => false,
            Stmt::Assign { id, .. }
            | Stmt::If { id, .. }
            | Stmt::Switch { id, .. }
            | Stmt::While { id, .. } => !keep.contains(id),
        })
        .map(deep_stmt_count)
        .sum();
    block.stmts.retain(|s| match s {
        Stmt::Call { .. } | Stmt::Return { .. } => true,
        Stmt::Assign { id, .. }
        | Stmt::If { id, .. }
        | Stmt::Switch { id, .. }
        | Stmt::While { id, .. } => keep.contains(id),
    });
    *removed += dropped;
    for stmt in &mut block.stmts {
        match stmt {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                retain_cone(then_branch, keep, removed);
                if let Some(b) = else_branch {
                    retain_cone(b, keep, removed);
                }
            }
            Stmt::Switch { cases, default, .. } => {
                for case in cases.iter_mut() {
                    retain_cone(&mut case.body, keep, removed);
                }
                if let Some(b) = default {
                    retain_cone(b, keep, removed);
                }
            }
            Stmt::While { body, .. } => retain_cone(body, keep, removed),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Reverse CSE (3.2.1)
// ---------------------------------------------------------------------------

/// Substitutes single-assignment temporaries whose defining expression only
/// reads function parameters or constants, then drops the temporary and its
/// assignment.  (The restriction guarantees the defining expression still has
/// the same value at every use site.)
fn reverse_cse(f: &mut Function, report: &mut OptReport) {
    let params: HashSet<String> = f.params.iter().map(|p| p.name.clone()).collect();
    loop {
        let mut candidate: Option<(String, Expr)> = None;
        let mut assign_counts: HashMap<String, usize> = HashMap::new();
        let mut defs: HashMap<String, Expr> = HashMap::new();
        f.for_each_stmt(&mut |s| {
            if let Stmt::Assign { target, value, .. } = s {
                *assign_counts.entry(target.clone()).or_insert(0) += 1;
                defs.insert(target.clone(), value.clone());
            }
        });
        for local in &f.locals {
            if local.init.is_some() {
                continue;
            }
            if assign_counts.get(&local.name) != Some(&1) {
                continue;
            }
            let def = defs.get(&local.name).expect("counted assignment").clone();
            let reads_only_params = def.referenced_vars().iter().all(|v| params.contains(*v));
            if reads_only_params {
                candidate = Some((local.name.clone(), def));
                break;
            }
        }
        let Some((name, def)) = candidate else {
            return;
        };
        // Drop the defining assignment, substitute all reads, remove the decl.
        remove_statements(
            &mut f.body,
            &mut |s| matches!(s, Stmt::Assign { target, .. } if target == &name),
            report,
        );
        substitute_reads(&mut f.body, &name, &def);
        f.locals.retain(|l| l.name != name);
        report.substituted_temps.push(name);
    }
}

fn substitute_reads(block: &mut Block, name: &str, replacement: &Expr) {
    for_each_stmt_in_block_mut(block, &mut |s| match s {
        Stmt::Assign { value, .. } => *value = value.substitute(name, replacement),
        Stmt::Call { args, .. } => {
            for a in args.iter_mut() {
                *a = a.substitute(name, replacement);
            }
        }
        Stmt::If { cond, .. } => *cond = cond.substitute(name, replacement),
        Stmt::Switch { selector, .. } => *selector = selector.substitute(name, replacement),
        Stmt::While { cond, .. } => *cond = cond.substitute(name, replacement),
        Stmt::Return { value, .. } => {
            if let Some(v) = value {
                *v = v.substitute(name, replacement);
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Live-variable analysis (3.2.2)
// ---------------------------------------------------------------------------

/// Removes locals that are never read (together with the assignments feeding
/// them) and merges locals with disjoint lifetimes onto one location.
fn live_variable_analysis(f: &mut Function, report: &mut OptReport) {
    // (a) unused-variable removal.
    let read_vars = collect_read_vars(f);
    let unused: Vec<String> = f
        .locals
        .iter()
        .filter(|l| !read_vars.contains(&l.name))
        .map(|l| l.name.clone())
        .collect();
    for name in &unused {
        remove_statements(
            &mut f.body,
            &mut |s| matches!(s, Stmt::Assign { target, .. } if target == name),
            report,
        );
        f.locals.retain(|l| &l.name != name);
        report.removed_vars.push(name.clone());
    }

    // (b) lifetime-based merging over the pre-order statement index.
    // Variables whose very first mention is a *read* may be uninitialised
    // (free in the model); sharing a location with them would alias that free
    // read onto another variable's previous value and change the model, so
    // they are excluded from merging.
    let mut mentions: HashMap<String, (usize, usize)> = HashMap::new();
    let mut read_first: HashSet<String> = HashSet::new();
    let mut idx = 0usize;
    f.for_each_stmt(&mut |s| {
        let mut touch = |name: &str, is_read: bool| {
            if is_read && !mentions.contains_key(name) {
                read_first.insert(name.to_owned());
            }
            let e = mentions.entry(name.to_owned()).or_insert((idx, idx));
            e.0 = e.0.min(idx);
            e.1 = e.1.max(idx);
        };
        match s {
            Stmt::Assign { target, value, .. } => {
                for v in value.referenced_vars() {
                    touch(v, true);
                }
                touch(target, false);
            }
            Stmt::Call { args, .. } => {
                for a in args {
                    for v in a.referenced_vars() {
                        touch(v, true);
                    }
                }
            }
            Stmt::If { cond, .. } => {
                for v in cond.referenced_vars() {
                    touch(v, true);
                }
            }
            Stmt::Switch { selector, .. } => {
                for v in selector.referenced_vars() {
                    touch(v, true);
                }
            }
            Stmt::While { cond, .. } => {
                for v in cond.referenced_vars() {
                    touch(v, true);
                }
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    for r in v.referenced_vars() {
                        touch(r, true);
                    }
                }
            }
        }
        idx += 1;
    });

    let mergeable: Vec<(String, Ty, (usize, usize))> = f
        .locals
        .iter()
        .filter(|l| l.init.is_none() && !read_first.contains(&l.name))
        .filter_map(|l| {
            mentions
                .get(&l.name)
                .map(|span| (l.name.clone(), l.ty, *span))
        })
        .collect();
    let mut merged_away: HashSet<String> = HashSet::new();
    for i in 0..mergeable.len() {
        if merged_away.contains(&mergeable[i].0) {
            continue;
        }
        for j in (i + 1)..mergeable.len() {
            if merged_away.contains(&mergeable[j].0) {
                continue;
            }
            let (ref a, ty_a, span_a) = mergeable[i];
            let (ref b, ty_b, span_b) = mergeable[j];
            let disjoint = span_a.1 < span_b.0 || span_b.1 < span_a.0;
            if ty_a == ty_b && disjoint {
                rename_var(&mut f.body, b, a);
                f.locals.retain(|l| &l.name != b);
                merged_away.insert(b.clone());
                report.merged_vars.push((a.clone(), b.clone()));
            }
        }
    }
}

fn collect_read_vars(f: &Function) -> HashSet<String> {
    let mut read = HashSet::new();
    f.for_each_stmt(&mut |s| {
        let mut add = |e: &Expr| {
            for v in e.referenced_vars() {
                read.insert(v.to_owned());
            }
        };
        match s {
            Stmt::Assign { value, .. } => add(value),
            Stmt::Call { args, .. } => args.iter().for_each(add),
            Stmt::If { cond, .. } => add(cond),
            Stmt::Switch { selector, .. } => add(selector),
            Stmt::While { cond, .. } => add(cond),
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    add(v);
                }
            }
        }
    });
    read
}

fn rename_var(block: &mut Block, from: &str, to: &str) {
    let replacement = Expr::var(to);
    for_each_stmt_in_block_mut(block, &mut |s| {
        if let Stmt::Assign { target, .. } = s {
            if target == from {
                *target = to.to_owned();
            }
        }
    });
    substitute_reads(block, from, &replacement);
}

// ---------------------------------------------------------------------------
// Variable initialisation (3.2.5)
// ---------------------------------------------------------------------------

/// Gives every uninitialised local a zero initialiser.  This does not change
/// the size of the state space `|D|` but collapses the initial-state set
/// `D_I` to a single point per input assignment (matching the zero-filled
/// `.bss` semantics of the embedded targets the generated code runs on).
fn variable_initialisation(f: &mut Function, report: &mut OptReport) {
    for local in &mut f.locals {
        if local.init.is_none() {
            local.init = Some(Expr::int(0));
            report.initialised_vars.push(local.name.clone());
        }
    }
}

// ---------------------------------------------------------------------------
// Dead variable and code elimination (3.2.6)
// ---------------------------------------------------------------------------

/// Removes variables that cannot influence control flow, the assignments and
/// calls that only feed them, and whole branch statements that neither test a
/// control-relevant variable nor contain any surviving statement.
fn dead_code_elimination(f: &mut Function, preserve: &HashSet<StmtId>, report: &mut OptReport) {
    // Control-relevant variables: read in any condition, transitively closed
    // over assignments into relevant variables.
    let mut relevant: HashSet<String> = HashSet::new();
    f.for_each_stmt(&mut |s| {
        let cond = match s {
            Stmt::If { cond, .. } | Stmt::While { cond, .. } => Some(cond),
            Stmt::Switch { selector, .. } => Some(selector),
            _ => None,
        };
        if let Some(c) = cond {
            for v in c.referenced_vars() {
                relevant.insert(v.to_owned());
            }
        }
    });
    loop {
        let before = relevant.len();
        f.for_each_stmt(&mut |s| {
            if let Stmt::Assign { target, value, .. } = s {
                if relevant.contains(target) {
                    for v in value.referenced_vars() {
                        relevant.insert(v.to_owned());
                    }
                }
            }
        });
        if relevant.len() == before {
            break;
        }
    }

    // Remove assignments to irrelevant variables, except preserved
    // statements.  Calls are kept: they never influence control flow, but
    // they anchor the branches the measurement phase cares about.
    remove_statements(
        &mut f.body,
        &mut |s| match s {
            Stmt::Assign { id, target, .. } => !preserve.contains(id) && !relevant.contains(target),
            _ => false,
        },
        report,
    );

    // Remove branch statements whose condition is irrelevant to any surviving
    // code: no preserved statement inside, no surviving statement inside, and
    // the branch itself not preserved.
    remove_statements(
        &mut f.body,
        &mut |s| match s {
            Stmt::If {
                id,
                then_branch,
                else_branch,
                ..
            } => {
                !preserve.contains(id)
                    && block_is_empty_deep(then_branch)
                    && else_branch
                        .as_ref()
                        .map(block_is_empty_deep)
                        .unwrap_or(true)
            }
            Stmt::Switch {
                id, cases, default, ..
            } => {
                !preserve.contains(id)
                    && cases.iter().all(|c| block_is_empty_deep(&c.body))
                    && default.as_ref().map(block_is_empty_deep).unwrap_or(true)
            }
            Stmt::While { id, body, .. } => !preserve.contains(id) && block_is_empty_deep(body),
            _ => false,
        },
        report,
    );

    // Drop declarations of locals that no longer appear anywhere.
    let still_used = collect_mentioned_vars(f);
    let removed: Vec<String> = f
        .locals
        .iter()
        .filter(|l| !still_used.contains(&l.name))
        .map(|l| l.name.clone())
        .collect();
    f.locals.retain(|l| still_used.contains(&l.name));
    report.removed_vars.extend(removed);
}

fn collect_mentioned_vars(f: &Function) -> HashSet<String> {
    let mut out = collect_read_vars(f);
    f.for_each_stmt(&mut |s| {
        if let Stmt::Assign { target, .. } = s {
            out.insert(target.clone());
        }
    });
    out
}

fn block_is_empty_deep(block: &Block) -> bool {
    block.stmts.is_empty()
}

/// Removes every statement matching `pred` from `block` and all nested
/// blocks, counting removals in the report.
fn remove_statements(
    block: &mut Block,
    pred: &mut impl FnMut(&Stmt) -> bool,
    report: &mut OptReport,
) {
    let before = block.stmts.len();
    block.stmts.retain(|s| !pred(s));
    report.removed_stmts += before - block.stmts.len();
    for stmt in &mut block.stmts {
        match stmt {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                remove_statements(then_branch, pred, report);
                if let Some(e) = else_branch {
                    remove_statements(e, pred, report);
                }
            }
            Stmt::Switch { cases, default, .. } => {
                for case in cases.iter_mut() {
                    remove_statements(&mut case.body, pred, report);
                }
                if let Some(d) = default {
                    remove_statements(d, pred, report);
                }
            }
            Stmt::While { body, .. } => remove_statements(body, pred, report),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_function;
    use tmg_minic::parse_function;

    fn optimise(src: &str, opts: Optimisations) -> (Function, OptReport) {
        apply_optimisations(&parse_function(src).expect("parse"), &opts)
    }

    #[test]
    fn reverse_cse_substitutes_single_assignment_temps() {
        let src = "void f(int b) { int a; int c; int d; a = b + 1; c = a + b; d = a * 2; if (c > d) { g(); } }";
        let (f, report) = optimise(
            src,
            Optimisations {
                reverse_cse: true,
                ..Optimisations::none()
            },
        );
        // `a`, `c` and `d` are all single-assignment temporaries derived from
        // the parameter `b`, so all three disappear (the paper's example has
        // three substitutable temporaries as well).
        assert_eq!(report.substituted_temps.len(), 3);
        assert!(report.substituted_temps.contains(&"a".to_owned()));
        assert!(f.decl("a").is_none());
        assert!(f.locals.is_empty());
        // The surviving condition only reads the parameter.
        let mut cond_vars = Vec::new();
        f.for_each_stmt(&mut |s| {
            if let Stmt::If { cond, .. } = s {
                cond_vars = cond
                    .referenced_vars()
                    .iter()
                    .map(|v| v.to_string())
                    .collect();
            }
        });
        assert!(cond_vars.iter().all(|v| v == "b"));
    }

    #[test]
    fn reverse_cse_leaves_multiply_assigned_vars_alone() {
        let src = "void f(int b) { int a; a = b + 1; a = b + 2; if (a > 0) { g(); } }";
        let (f, report) = optimise(
            src,
            Optimisations {
                reverse_cse: true,
                ..Optimisations::none()
            },
        );
        assert!(report.substituted_temps.is_empty());
        assert!(f.decl("a").is_some());
    }

    #[test]
    fn live_variable_analysis_removes_unused_vars() {
        let src = "void f(int a) { int unused1; int unused2; int used; used = a; unused1 = 3; if (used > 0) { g(); } }";
        let (f, report) = optimise(
            src,
            Optimisations {
                live_variable_analysis: true,
                ..Optimisations::none()
            },
        );
        assert!(report.removed_vars.contains(&"unused1".to_owned()));
        assert!(report.removed_vars.contains(&"unused2".to_owned()));
        assert!(f.decl("unused1").is_none());
        assert!(f.decl("used").is_some());
        assert!(report.removed_stmts >= 1);
    }

    #[test]
    fn live_variable_analysis_merges_disjoint_lifetimes() {
        let src = r#"
            void f(int a) {
                int early; int late;
                early = a + 1;
                if (early > 2) { g(); }
                late = a - 1;
                if (late < 0) { h(); }
            }
        "#;
        let (f, report) = optimise(
            src,
            Optimisations {
                live_variable_analysis: true,
                ..Optimisations::none()
            },
        );
        assert_eq!(report.merged_vars.len(), 1);
        assert_eq!(f.locals.len(), 1);
    }

    #[test]
    fn overlapping_lifetimes_are_not_merged() {
        let src = "void f(int a) { int x; int y; x = a; y = a + 1; if (x > y) { g(); } }";
        let (f, report) = optimise(
            src,
            Optimisations {
                live_variable_analysis: true,
                ..Optimisations::none()
            },
        );
        assert!(report.merged_vars.is_empty());
        assert_eq!(f.locals.len(), 2);
    }

    #[test]
    fn variable_initialisation_fills_in_zero() {
        let src = "void f(int a) { int u; int v = 3; u = a; if (u > 0) { g(); } }";
        let (f, report) = optimise(
            src,
            Optimisations {
                variable_initialisation: true,
                ..Optimisations::none()
            },
        );
        assert_eq!(report.initialised_vars, vec!["u".to_owned()]);
        assert_eq!(f.decl("u").and_then(|d| d.init.clone()), Some(Expr::int(0)));
        assert_eq!(f.decl("v").and_then(|d| d.init.clone()), Some(Expr::int(3)));
    }

    #[test]
    fn dead_code_elimination_removes_non_control_variables_and_branches() {
        let src = r#"
            void f(int mode __range(0, 3), int dbg) {
                int counter; int relevant;
                relevant = mode + 1;
                counter = counter + 1;
                if (dbg > 0) { counter = counter + 2; }
                if (relevant > 2) { act(); }
            }
        "#;
        let (f, report) = optimise(
            src,
            Optimisations {
                dead_code_elimination: true,
                ..Optimisations::none()
            },
        );
        // `counter` never reaches a condition; `dbg`'s branch only feeds it.
        assert!(f.decl("counter").is_none());
        assert!(report.removed_vars.contains(&"counter".to_owned()));
        // The `if (dbg > 0)` branch is gone, the `if (relevant > 2)` stays.
        assert_eq!(f.branch_count(), 1);
        // `relevant` is control-relevant and survives.
        assert!(f.decl("relevant").is_some());
    }

    #[test]
    fn dead_code_elimination_respects_preserved_statements() {
        let src = "void f(int dbg) { int c; if (dbg > 0) { c = 1; } }";
        let parsed = parse_function(src).expect("parse");
        let mut branch_id = None;
        parsed.for_each_stmt(&mut |s| {
            if matches!(s, Stmt::If { .. }) {
                branch_id = Some(s.id());
            }
        });
        let preserve: HashSet<StmtId> = branch_id.into_iter().collect();
        let (f, _) = apply_optimisations_preserving(
            &parsed,
            &Optimisations {
                dead_code_elimination: true,
                ..Optimisations::none()
            },
            &preserve,
        );
        assert_eq!(f.branch_count(), 1, "preserved branch must survive");
    }

    #[test]
    fn all_optimisations_shrink_the_model() {
        let src = r#"
            void f(bool go, char speed __range(0, 2)) {
                int tmp; int unused; int dead; int st;
                tmp = speed + 1;
                dead = dead + 5;
                st = 0;
                if (go && tmp > 1) { st = 1; } else { st = 2; }
                if (st == 1) { act1(); } else { act2(); }
            }
        "#;
        let f = parse_function(src).expect("parse");
        let naive = encode_function(&f, &Optimisations::none().encode_options());
        let (opt_f, _) = apply_optimisations(&f, &Optimisations::all());
        let optimised = encode_function(&opt_f, &Optimisations::all().encode_options());
        assert!(optimised.state_bits() < naive.state_bits());
        assert!(optimised.vars.len() < naive.vars.len());
        assert!(optimised.transitions.len() <= naive.transitions.len());
        assert!(optimised.initial_state_count() < naive.initial_state_count());
    }

    #[test]
    fn slice_drops_unqueried_independent_branches_and_their_vars() {
        let src = r#"
            void f(int key __range(0, 100), char mode __range(0, 5)) {
                int log;
                if (key == 42) { hit(); }
                log = mode + 1;
                if (mode > 3) { fast(); } else { slow(); }
            }
        "#;
        let f = parse_function(src).expect("parse");
        let mut key_branch = None;
        f.for_each_stmt(&mut |s| {
            if matches!(s, Stmt::If { cond, .. } if cond.referenced_vars().contains(&"key")) {
                key_branch = Some(s.id());
            }
        });
        let union: HashSet<StmtId> = key_branch.into_iter().collect();
        let (sliced, report) = slice_for_queries(&f, &union).expect("slice bites");
        assert_eq!(sliced.branch_count(), 1, "mode branch removed");
        assert!(sliced.decl("log").is_none());
        assert_eq!(sliced.params.len(), 2, "parameters always survive");
        assert!(report.removed_stmts >= 2);
        assert_eq!(report.removed_vars, vec!["log".to_owned()]);
        // Slicing is idempotent: slicing the slice changes nothing.
        assert!(
            slice_for_queries(&sliced, &union).is_none(),
            "slicing a slice must be the identity"
        );
    }

    #[test]
    fn slice_is_identity_when_every_branch_is_queried() {
        let src = r#"
            void f(char a __range(0, 4)) {
                if (a > 2) { x(); }
                if (a < 1) { y(); }
            }
        "#;
        let f = parse_function(src).expect("parse");
        let mut union = HashSet::new();
        f.for_each_stmt(&mut |s| {
            if matches!(s, Stmt::If { .. }) {
                union.insert(s.id());
            }
        });
        assert!(slice_for_queries(&f, &union).is_none());
    }

    #[test]
    fn optimisation_switchboard_helpers() {
        assert_eq!(Optimisations::none().enabled_names().len(), 0);
        assert_eq!(Optimisations::all().enabled_names().len(), 6);
        assert!(Optimisations::all().encode_options().range_analysis);
        assert!(!Optimisations::none().encode_options().concat_statements);
        assert_eq!(Optimisations::default(), Optimisations::all());
    }
}
