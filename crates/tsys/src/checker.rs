//! Explicit-state bounded reachability checker — the reproduction's stand-in
//! for the SAL 2 model checker.
//!
//! The query the WCET pipeline needs is always the same: *is there an input
//! assignment that drives execution down a selected path, and if so, which
//! one?*  The checker answers it by a depth-first search over concrete states
//! `(location, valuation)` of the encoded transition system.  Variables whose
//! value is unknown (function parameters and uninitialised locals — the
//! paper's `D_I`) are enumerated lazily: the search splits over a variable's
//! domain the first time its value is actually read.  The cost of a query is
//! therefore governed by exactly the quantities the Section 3.2 optimisations
//! reduce: the width of variable domains, the number of variables in the
//! state vector and the number of transitions.

use crate::encode::encode_function;
use crate::model::{LocId, Model, Transition, VarRole};
use crate::opt::{apply_optimisations_preserving, OptReport, Optimisations};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};
use tmg_minic::ast::{BinOp, Expr, Function, StmtId, UnOp};
use tmg_minic::interp::BranchChoice;
use tmg_minic::value::InputVector;

/// A path query: the ordered branch decisions the witness execution must take.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PathQuery {
    /// Decisions in execution order (typically the decisions of one program
    /// segment path, produced by [`tmg_cfg::enumerate_region_paths`]).
    pub decisions: Vec<(StmtId, BranchChoice)>,
}

impl PathQuery {
    /// Creates a query from a decision sequence.
    pub fn new(decisions: Vec<(StmtId, BranchChoice)>) -> PathQuery {
        PathQuery { decisions }
    }

    /// A query satisfied by any execution (used to probe reachability of the
    /// function end, e.g. in the Table-2 ablation).
    pub fn any_execution() -> PathQuery {
        PathQuery::default()
    }

    /// Statements mentioned by the query.
    pub fn stmts(&self) -> HashSet<StmtId> {
        self.decisions.iter().map(|(s, _)| *s).collect()
    }
}

/// Verdict of a check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckOutcome {
    /// A witness input assignment driving the requested path was found.
    Feasible {
        /// Values for the function parameters (the paper's "test data
        /// pattern").
        witness: InputVector,
        /// Transitions along the witness run up to query completion.
        steps: u64,
    },
    /// The search space was exhausted without a witness: the path is
    /// infeasible (within the bounded domains and loop bounds).
    Infeasible,
    /// The search budget was exhausted before a verdict was reached.
    Unknown,
}

impl CheckOutcome {
    /// The witness input vector, if the path is feasible.
    pub fn witness(&self) -> Option<&InputVector> {
        match self {
            CheckOutcome::Feasible { witness, .. } => Some(witness),
            _ => None,
        }
    }

    /// Whether the path was proven infeasible.
    pub fn is_infeasible(&self) -> bool {
        matches!(self, CheckOutcome::Infeasible)
    }
}

/// Cost statistics of one check — the quantities reported in Table 2.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CheckStats {
    /// Total transitions fired during the search (∝ checking time).
    pub transitions_fired: u64,
    /// Concrete states created (splits included).
    pub states_created: u64,
    /// Deepest run explored.
    pub max_depth: u64,
    /// Bits of the encoded state vector.
    pub state_bits: u32,
    /// Bytes of one packed state.
    pub state_bytes: u64,
    /// Estimated memory for the explored-state store
    /// (`states_created × state_bytes`), the analogue of the paper's
    /// "memory use" column.
    pub memory_estimate_bytes: u64,
    /// Transitions along the witness run (the paper's "steps" column), if a
    /// witness was found.
    pub witness_steps: Option<u64>,
    /// Number of transitions in the checked model.
    pub model_transitions: usize,
    /// Number of state variables in the checked model.
    pub model_vars: usize,
    /// Wall-clock time of the search.
    pub duration: Duration,
}

/// Result of one model-checking query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckResult {
    /// Feasible / infeasible / unknown.
    pub outcome: CheckOutcome,
    /// Search cost statistics.
    pub stats: CheckStats,
    /// What the source-level optimisation passes did (empty when checking a
    /// pre-built model).
    pub opt_report: OptReport,
}

/// Explicit-state bounded model checker.
#[derive(Debug, Clone)]
pub struct ModelChecker {
    /// Optimisations applied before encoding in [`ModelChecker::find_test_data`].
    pub optimisations: Optimisations,
    /// Maximum number of transitions fired before giving up with
    /// [`CheckOutcome::Unknown`].
    pub max_transitions: u64,
    /// Maximum length of a single run (guards against loops whose bound
    /// annotation is violated for some inputs).
    pub max_depth: u64,
}

impl Default for ModelChecker {
    fn default() -> Self {
        ModelChecker::new()
    }
}

impl ModelChecker {
    /// A checker with all optimisations enabled and default budgets.
    pub fn new() -> ModelChecker {
        ModelChecker::with_optimisations(Optimisations::all())
    }

    /// A checker with the given optimisation set.
    pub fn with_optimisations(optimisations: Optimisations) -> ModelChecker {
        ModelChecker {
            optimisations,
            max_transitions: 50_000_000,
            max_depth: 100_000,
        }
    }

    /// Sets the transition budget.
    pub fn with_budget(mut self, max_transitions: u64) -> ModelChecker {
        self.max_transitions = max_transitions;
        self
    }

    /// Generates test data for `query` on `function`: applies the configured
    /// optimisations, encodes the function and searches for a witness.
    pub fn find_test_data(&self, function: &Function, query: &PathQuery) -> CheckResult {
        let preserve = query.stmts();
        let (optimised, opt_report) =
            apply_optimisations_preserving(function, &self.optimisations, &preserve);
        let model = encode_function(&optimised, &self.optimisations.encode_options());
        let mut result = self.check_model(&model, query);
        result.opt_report = opt_report;
        result
    }

    /// Runs the search on an already-encoded model.
    pub fn check_model(&self, model: &Model, query: &PathQuery) -> CheckResult {
        let start = Instant::now();
        let var_index: HashMap<&str, usize> = model
            .vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.name.as_str(), i))
            .collect();
        let mut outgoing: Vec<Vec<&Transition>> = vec![Vec::new(); model.locations as usize];
        for t in &model.transitions {
            outgoing[t.from.index()].push(t);
        }

        let initial_values: Vec<Option<i64>> = model.vars.iter().map(|v| v.init).collect();
        let mut stats = CheckStats {
            state_bits: model.state_bits(),
            state_bytes: model.state_bytes(),
            model_transitions: model.transitions.len(),
            model_vars: model.vars.len(),
            ..CheckStats::default()
        };

        let mut stack: Vec<State> = vec![State {
            loc: model.initial,
            values: initial_values,
            monitor: 0,
            depth: 0,
        }];
        stats.states_created = 1;

        let mut outcome = CheckOutcome::Infeasible;
        'search: while let Some(state) = stack.pop() {
            if stats.transitions_fired + stats.states_created >= self.max_transitions {
                outcome = CheckOutcome::Unknown;
                break 'search;
            }
            stats.max_depth = stats.max_depth.max(state.depth);
            if state.monitor == query.decisions.len() {
                outcome = CheckOutcome::Feasible {
                    witness: witness_from(model, &state, &var_index),
                    steps: state.depth,
                };
                stats.witness_steps = Some(state.depth);
                break 'search;
            }
            if state.depth >= self.max_depth {
                continue;
            }
            let transitions = &outgoing[state.loc.index()];
            if transitions.is_empty() {
                continue;
            }
            // First pass: find out whether deciding the enabled set requires
            // the value of a still-unknown variable.
            let mut split_var: Option<usize> = None;
            let mut enabled: Vec<&Transition> = Vec::new();
            for t in transitions {
                match &t.guard {
                    None => enabled.push(t),
                    Some(g) => match eval_partial(g, &state.values, &var_index) {
                        Eval::Known(v) => {
                            if v != 0 {
                                enabled.push(t);
                            }
                        }
                        Eval::Unknown(var) => {
                            split_var = Some(var);
                            break;
                        }
                        Eval::Error => {}
                    },
                }
            }
            if split_var.is_none() {
                // Effects may also read unknown variables.
                'effects: for t in &enabled {
                    for (_, e) in &t.effect {
                        if let Eval::Unknown(var) = eval_partial(e, &state.values, &var_index) {
                            split_var = Some(var);
                            break 'effects;
                        }
                    }
                }
            }
            if let Some(var) = split_var {
                let (lo, hi) = model.vars[var].domain;
                // Push in descending order so the smallest value is explored
                // first (deterministic witnesses with minimal values).
                for value in (lo..=hi).rev() {
                    let mut child = state.clone();
                    child.values[var] = Some(value);
                    stack.push(child);
                    stats.states_created += 1;
                }
                continue;
            }
            // Fire enabled transitions (in reverse so the first is explored
            // first by the DFS).
            for t in enabled.iter().rev() {
                if stats.transitions_fired >= self.max_transitions {
                    outcome = CheckOutcome::Unknown;
                    break 'search;
                }
                // Path monitor.
                let mut monitor = state.monitor;
                if let Some((stmt, choice)) = &t.decision {
                    if monitor < query.decisions.len() {
                        let (expected_stmt, expected_choice) = query.decisions[monitor];
                        if *stmt == expected_stmt {
                            if *choice == expected_choice {
                                monitor += 1;
                            } else {
                                // Wrong decision at a constrained branch: this
                                // run can no longer follow the path.
                                continue;
                            }
                        }
                    }
                }
                let mut values = state.values.clone();
                let mut failed = false;
                for (target, expr) in &t.effect {
                    match eval_partial(expr, &state.values, &var_index) {
                        Eval::Known(v) => {
                            let idx = var_index[target.as_str()];
                            values[idx] = Some(model.vars[idx].ty.wrap(v));
                        }
                        Eval::Unknown(_) => {
                            // Handled by the split pass; being here means a
                            // race between guard and effect reads — skip.
                            failed = true;
                            break;
                        }
                        Eval::Error => {
                            failed = true;
                            break;
                        }
                    }
                }
                if failed {
                    continue;
                }
                stats.transitions_fired += 1;
                stack.push(State {
                    loc: t.to,
                    values,
                    monitor,
                    depth: state.depth + 1,
                });
                stats.states_created += 1;
            }
        }

        stats.memory_estimate_bytes = stats.states_created * stats.state_bytes;
        stats.duration = start.elapsed();
        CheckResult {
            outcome,
            stats,
            opt_report: OptReport::default(),
        }
    }
}

#[derive(Debug, Clone)]
struct State {
    loc: LocId,
    values: Vec<Option<i64>>,
    monitor: usize,
    depth: u64,
}

fn witness_from(model: &Model, state: &State, var_index: &HashMap<&str, usize>) -> InputVector {
    let mut witness = InputVector::new();
    for var in &model.vars {
        if var.role == VarRole::Input {
            let idx = var_index[var.name.as_str()];
            let value = state.values[idx].unwrap_or_else(|| var.domain.0.max(0).min(var.domain.1));
            witness.set(var.name.clone(), value);
        }
    }
    witness
}

enum Eval {
    Known(i64),
    Unknown(usize),
    Error,
}

/// Partial expression evaluation: returns the value if every read variable is
/// known, otherwise the index of the first unknown variable encountered.
fn eval_partial(expr: &Expr, values: &[Option<i64>], var_index: &HashMap<&str, usize>) -> Eval {
    match expr {
        Expr::Int(v) => Eval::Known(*v),
        Expr::Var(name) => match var_index.get(name.as_str()) {
            Some(idx) => match values[*idx] {
                Some(v) => Eval::Known(v),
                None => Eval::Unknown(*idx),
            },
            None => Eval::Error,
        },
        Expr::Unary { op, operand } => match eval_partial(operand, values, var_index) {
            Eval::Known(v) => Eval::Known(match op {
                UnOp::Neg => v.wrapping_neg(),
                UnOp::Not => i64::from(v == 0),
                UnOp::BitNot => !v,
            }),
            other => other,
        },
        Expr::Binary { op, lhs, rhs } => {
            let l = match eval_partial(lhs, values, var_index) {
                Eval::Known(v) => v,
                other => return other,
            };
            // Short-circuit.
            if *op == BinOp::And && l == 0 {
                return Eval::Known(0);
            }
            if *op == BinOp::Or && l != 0 {
                return Eval::Known(1);
            }
            let r = match eval_partial(rhs, values, var_index) {
                Eval::Known(v) => v,
                other => return other,
            };
            Eval::Known(match op {
                BinOp::Add => l.wrapping_add(r),
                BinOp::Sub => l.wrapping_sub(r),
                BinOp::Mul => l.wrapping_mul(r),
                BinOp::Div => {
                    if r == 0 {
                        return Eval::Error;
                    }
                    l.wrapping_div(r)
                }
                BinOp::Mod => {
                    if r == 0 {
                        return Eval::Error;
                    }
                    l.wrapping_rem(r)
                }
                BinOp::Lt => i64::from(l < r),
                BinOp::Le => i64::from(l <= r),
                BinOp::Gt => i64::from(l > r),
                BinOp::Ge => i64::from(l >= r),
                BinOp::Eq => i64::from(l == r),
                BinOp::Ne => i64::from(l != r),
                BinOp::And => i64::from(l != 0 && r != 0),
                BinOp::Or => i64::from(l != 0 || r != 0),
                BinOp::BitAnd => l & r,
                BinOp::BitOr => l | r,
                BinOp::BitXor => l ^ r,
                BinOp::Shl => l.wrapping_shl((r & 63) as u32),
                BinOp::Shr => l.wrapping_shr((r & 63) as u32),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_cfg::{build_cfg, enumerate_region_paths};
    use tmg_minic::parse_function;
    use tmg_minic::parse_program;
    use tmg_minic::Interpreter;

    fn checker() -> ModelChecker {
        ModelChecker::new()
    }

    fn paths_of(src: &str) -> (Function, Vec<tmg_cfg::PathSpec>) {
        let f = parse_function(src).expect("parse");
        let lowered = build_cfg(&f);
        let paths =
            enumerate_region_paths(&lowered.cfg, lowered.regions.root(), 10_000).expect("paths");
        (f, paths)
    }

    use tmg_minic::ast::Function;

    #[test]
    fn finds_witness_for_every_feasible_path_of_a_nested_if() {
        let src = r#"
            void f(char a __range(0, 4), char b __range(0, 4)) {
                if (a > 2) { if (b == 1) { x(); } else { y(); } } else { z(); }
            }
        "#;
        let (f, paths) = paths_of(src);
        assert_eq!(paths.len(), 3);
        for path in &paths {
            let result = checker().find_test_data(&f, &PathQuery::new(path.decisions.clone()));
            let witness = result.outcome.witness().expect("feasible path").clone();
            // Replay on the interpreter and confirm the path is taken.
            let program = parse_program(src).expect("parse");
            let out = Interpreter::new(&program).run("f", &witness).expect("run");
            assert!(path.matches_trace(&out.trace.branch_signature()));
        }
    }

    #[test]
    fn proves_contradictory_paths_infeasible() {
        // a cannot be both > 2 and < 1.
        let src = r#"
            void f(char a __range(0, 4)) {
                if (a > 2) { x(); }
                if (a < 1) { y(); }
            }
        "#;
        let (f, paths) = paths_of(src);
        // The Then/Then path is infeasible.
        let infeasible: Vec<_> = paths
            .iter()
            .filter(|p| p.decisions.iter().all(|(_, c)| *c == BranchChoice::Then))
            .collect();
        assert_eq!(infeasible.len(), 1);
        let result = checker().find_test_data(&f, &PathQuery::new(infeasible[0].decisions.clone()));
        assert!(result.outcome.is_infeasible());
        // Feasible ones are found.
        let feasible = paths
            .iter()
            .filter(|p| !p.decisions.iter().all(|(_, c)| *c == BranchChoice::Then))
            .count();
        assert_eq!(feasible, 3);
    }

    #[test]
    fn switch_paths_yield_matching_selector_values() {
        let src = r#"
            void f(char s __range(0, 5)) {
                switch (s) { case 0: a0(); break; case 3: a3(); break; default: d(); break; }
            }
        "#;
        let (f, paths) = paths_of(src);
        for path in &paths {
            let result = checker().find_test_data(&f, &PathQuery::new(path.decisions.clone()));
            let witness = result.outcome.witness().expect("feasible").clone();
            match path.decisions[0].1 {
                BranchChoice::Case(v) => assert_eq!(witness.get("s"), Some(v)),
                BranchChoice::Default => {
                    let s = witness.get("s").expect("s");
                    assert!(s != 0 && s != 3);
                }
                other => panic!("unexpected decision {other:?}"),
            }
        }
    }

    #[test]
    fn any_execution_query_is_trivially_feasible() {
        let f = parse_function("void f(int a) { if (a) { g(); } }").expect("parse");
        let result = checker().find_test_data(&f, &PathQuery::any_execution());
        assert!(result.outcome.witness().is_some());
    }

    #[test]
    fn loop_iteration_counts_can_be_forced() {
        let src = r#"
            void f(char n __range(0, 3)) {
                char i = 0;
                while (i < n) __bound(3) { i = i + 1; }
            }
        "#;
        let f = parse_function(src).expect("parse");
        let lowered = build_cfg(&f);
        let paths =
            enumerate_region_paths(&lowered.cfg, lowered.regions.root(), 100).expect("paths");
        assert_eq!(paths.len(), 4);
        for (k, path) in paths.iter().enumerate() {
            let result = checker().find_test_data(&f, &PathQuery::new(path.decisions.clone()));
            let witness = result.outcome.witness().expect("feasible").clone();
            // Path k iterates the loop `iterations` times; the witness must
            // request exactly that many.
            let iterations = path
                .decisions
                .iter()
                .filter(|(_, c)| *c == BranchChoice::LoopIterate)
                .count() as i64;
            assert_eq!(witness.get("n"), Some(iterations), "path {k}");
        }
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let src = "void f(int a, int b) { if (a == 12345 && b == 23456) { x(); } }";
        let f = parse_function(src).expect("parse");
        let mut paths = {
            let lowered = build_cfg(&f);
            enumerate_region_paths(&lowered.cfg, lowered.regions.root(), 10).expect("paths")
        };
        let then_path = paths.remove(0);
        let tight = ModelChecker::with_optimisations(Optimisations::none()).with_budget(1_000);
        let result = tight.find_test_data(&f, &PathQuery::new(then_path.decisions));
        assert_eq!(result.outcome, CheckOutcome::Unknown);
    }

    #[test]
    fn optimisations_reduce_search_cost() {
        let src = r#"
            void f(bool go, char speed __range(0, 2)) {
                char tmp; char unused1; char unused2; char dead;
                tmp = speed + 1;
                dead = dead + 1;
                if (go) { if (tmp == 3) { deep(); } else { shallow(); } } else { off(); }
            }
        "#;
        let (f, paths) = paths_of(src);
        let deep_path = paths
            .iter()
            .find(|p| {
                p.decisions.len() == 2
                    && p.decisions.iter().all(|(_, c)| *c == BranchChoice::Then)
            })
            .expect("deep path");
        let naive = ModelChecker::with_optimisations(Optimisations::none())
            .find_test_data(&f, &PathQuery::new(deep_path.decisions.clone()));
        let optimised = ModelChecker::with_optimisations(Optimisations::all())
            .find_test_data(&f, &PathQuery::new(deep_path.decisions.clone()));
        assert!(naive.outcome.witness().is_some());
        assert!(optimised.outcome.witness().is_some());
        assert!(
            optimised.stats.transitions_fired < naive.stats.transitions_fired,
            "optimised {} vs naive {}",
            optimised.stats.transitions_fired,
            naive.stats.transitions_fired
        );
        assert!(optimised.stats.state_bits < naive.stats.state_bits);
        assert!(optimised.stats.memory_estimate_bytes < naive.stats.memory_estimate_bytes);
    }

    #[test]
    fn statement_concatenation_shortens_witness_runs() {
        let src = r#"
            void f(bool go) {
                char a; char b; char c; char d;
                a = 1; b = 2; c = 3; d = 4;
                if (go) { x(); }
            }
        "#;
        let (f, paths) = paths_of(src);
        let path = PathQuery::new(paths[0].decisions.clone());
        let plain = ModelChecker::with_optimisations(Optimisations::none()).find_test_data(&f, &path);
        let concat = ModelChecker::with_optimisations(Optimisations {
            statement_concatenation: true,
            ..Optimisations::none()
        })
        .find_test_data(&f, &path);
        let plain_steps = plain.stats.witness_steps.expect("witness");
        let concat_steps = concat.stats.witness_steps.expect("witness");
        assert!(concat_steps < plain_steps, "{concat_steps} < {plain_steps}");
    }

    #[test]
    fn stats_are_populated() {
        let f = parse_function("void f(bool a) { if (a) { x(); } }").expect("parse");
        let result = checker().find_test_data(&f, &PathQuery::any_execution());
        assert!(result.stats.state_bits > 0);
        assert!(result.stats.model_transitions > 0);
        assert!(result.stats.states_created > 0);
        assert_eq!(
            result.stats.memory_estimate_bytes,
            result.stats.states_created * result.stats.state_bytes
        );
    }
}
