//! Explicit-state bounded reachability checker — the reproduction's stand-in
//! for the SAL 2 model checker.
//!
//! The query the WCET pipeline needs is always the same: *is there an input
//! assignment that drives execution down a selected path, and if so, which
//! one?*  The checker answers it by a depth-first search over concrete states
//! `(location, valuation)` of the encoded transition system.  Variables whose
//! value is unknown (function parameters and uninitialised locals — the
//! paper's `D_I`) are enumerated lazily: the search splits over a variable's
//! domain the first time its value is actually read.  The cost of a query is
//! therefore governed by exactly the quantities the Section 3.2 optimisations
//! reduce: the width of variable domains, the number of variables in the
//! state vector and the number of transitions.
//!
//! The search engine ([`SearchEngine::Arena`]) keeps every live state packed
//! in one contiguous arena — a flat `i64` value array plus a known-bits
//! mask, pushed and popped in stack discipline with zero per-state heap
//! allocations — evaluates pre-resolved (index-based) expressions from a
//! [`PreparedModel`], and deduplicates revisited
//! `(location, monitor, valuation)` states through a depth-aware
//! `rustc-hash` table.  (The original clone-per-state `Baseline` engine was
//! retired once three PRs of `BENCH_*.json` before/after trajectory existed;
//! its recorded wall times remain the benchmark's *before* floors.)

use crate::encode::encode_function;
use crate::model::{Model, VarRole};
use crate::opt::{apply_optimisations_preserving, OptReport, Optimisations};
use crate::prepared::{
    ExprPool, FastGuard, INode, NodeId, OwnedPreparedModel, PreparedModel, PreparedTransition,
};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::time::{Duration, Instant};
use tmg_minic::ast::{BinOp, Function, StmtId, UnOp};
use tmg_minic::interp::BranchChoice;
use tmg_minic::value::InputVector;

/// A path query: the ordered branch decisions the witness execution must take.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PathQuery {
    /// Decisions in execution order (typically the decisions of one program
    /// segment path, produced by [`tmg_cfg::enumerate_region_paths`]).
    pub decisions: Vec<(StmtId, BranchChoice)>,
    /// Statements mentioned by the decisions, computed once at construction
    /// (the optimisation passes and the multi-query relevance filter consult
    /// it repeatedly).
    stmts: HashSet<StmtId>,
}

impl PartialEq for PathQuery {
    fn eq(&self, other: &PathQuery) -> bool {
        // The statement set is derived from the decisions; comparing it would
        // only repeat the comparison.
        self.decisions == other.decisions
    }
}

impl Eq for PathQuery {}

impl PathQuery {
    /// Creates a query from a decision sequence.
    pub fn new(decisions: Vec<(StmtId, BranchChoice)>) -> PathQuery {
        let stmts = decisions.iter().map(|(s, _)| *s).collect();
        PathQuery { decisions, stmts }
    }

    /// A query satisfied by any execution (used to probe reachability of the
    /// function end, e.g. in the Table-2 ablation).
    pub fn any_execution() -> PathQuery {
        PathQuery::default()
    }

    /// Statements mentioned by the query.
    pub fn stmts(&self) -> &HashSet<StmtId> {
        &self.stmts
    }
}

/// Verdict of a check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckOutcome {
    /// A witness input assignment driving the requested path was found.
    Feasible {
        /// Values for the function parameters (the paper's "test data
        /// pattern").
        witness: InputVector,
        /// Transitions along the witness run up to query completion.
        steps: u64,
    },
    /// The search space was exhausted without a witness: the path is
    /// infeasible (within the bounded domains and loop bounds).
    Infeasible,
    /// The search budget was exhausted before a verdict was reached.
    Unknown,
}

impl CheckOutcome {
    /// The witness input vector, if the path is feasible.
    pub fn witness(&self) -> Option<&InputVector> {
        match self {
            CheckOutcome::Feasible { witness, .. } => Some(witness),
            _ => None,
        }
    }

    /// Whether the path was proven infeasible.
    pub fn is_infeasible(&self) -> bool {
        matches!(self, CheckOutcome::Infeasible)
    }
}

/// Cost statistics of one check — the quantities reported in Table 2.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CheckStats {
    /// Total transitions fired during the search (∝ checking time).
    pub transitions_fired: u64,
    /// Concrete states created (splits included).
    pub states_created: u64,
    /// Deepest run explored.
    pub max_depth: u64,
    /// Bits of the encoded state vector.
    pub state_bits: u32,
    /// Bytes of one packed state.
    pub state_bytes: u64,
    /// Estimated memory for the explored-state store
    /// (`states_created × state_bytes`), the analogue of the paper's
    /// "memory use" column.
    pub memory_estimate_bytes: u64,
    /// Transitions along the witness run (the paper's "steps" column), if a
    /// witness was found.
    pub witness_steps: Option<u64>,
    /// Number of transitions in the checked model.
    pub model_transitions: usize,
    /// Number of state variables in the checked model.
    pub model_vars: usize,
    /// Wall-clock time of the search.
    pub duration: Duration,
}

/// Result of one model-checking query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckResult {
    /// Feasible / infeasible / unknown.
    pub outcome: CheckOutcome,
    /// Search cost statistics.
    pub stats: CheckStats,
    /// What the source-level optimisation passes did (empty when checking a
    /// pre-built model).
    pub opt_report: OptReport,
}

/// Which explicit-state search implementation to run.
///
/// A single variant remains: the clone-per-state `Baseline` engine was
/// dropped after PR 3 (ROADMAP-sanctioned once the `BENCH_*.json` trajectory
/// existed).  The enum itself stays because the engine choice is part of the
/// checker's `Debug`-rendered configuration, which feeds the content hashes
/// of the persistent artifact cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SearchEngine {
    /// Packed contiguous state arena, pre-resolved expressions, depth-aware
    /// revisit dedup.
    #[default]
    Arena,
}

/// Explicit-state bounded model checker.
#[derive(Clone)]
pub struct ModelChecker {
    /// Optimisations applied before encoding in [`ModelChecker::find_test_data`].
    pub optimisations: Optimisations,
    /// Maximum number of transitions fired before giving up with
    /// [`CheckOutcome::Unknown`].
    pub max_transitions: u64,
    /// Maximum length of a single run (guards against loops whose bound
    /// annotation is violated for some inputs).
    pub max_depth: u64,
    /// Search implementation.
    pub engine: SearchEngine,
    /// Cone-of-influence slicing for multi-query batches
    /// ([`ModelChecker::check_many_shared`]): before the shared exploration
    /// runs, the batch model is sliced to the def/use cone of the queried
    /// decisions ([`crate::opt::slice_for_queries`]) — variables, assignments
    /// and whole unqueried branches that cannot affect any query's verdict
    /// are dropped, shrinking both the state vector and the set of domain
    /// splits.  Witnesses found on the slice are completed against the full
    /// model by a pinned re-search, so reported witnesses and step counts
    /// stay full-model-consistent; a completion that fails to replay falls
    /// back to the ordinary per-query search.  Part of the checker's
    /// `Debug`-rendered configuration, so the pipeline's content-addressed
    /// artifact keys change with it.
    pub slicing: bool,
    /// Number of expanded states after which the arena engine starts
    /// deduplicating revisited `(location, monitor, valuation)` states.
    /// On searches that complete within the transition budget, dedup is pure
    /// pruning and never changes a verdict; a budget-limited search may
    /// settle to a definite verdict where an undeduped one would report
    /// [`CheckOutcome::Unknown`], because pruning stretches the budget
    /// further.  It only trades hashing cost against re-exploration cost.
    pub dedup_after_pops: u64,
    /// Cooperative cancellation handle, polled at shard-claim boundaries of
    /// the multi-query explorer and between per-query fallback searches.  A
    /// fired token makes the search *unwind* with [`crate::cancel::Cancelled`]
    /// (caught by [`crate::cancel::catch_cancel`] at the pipeline boundary)
    /// rather than return a weaker verdict — a cancelled search never
    /// produces, and therefore never caches, a result.  Runtime-only state:
    /// deliberately excluded from the checker's `Debug` rendering so the
    /// content-addressed artifact keys are deadline-independent.
    pub cancel: crate::cancel::CancelToken,
}

impl Default for ModelChecker {
    fn default() -> Self {
        ModelChecker::new()
    }
}

impl std::fmt::Debug for ModelChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Renders exactly the configuration fields the derived impl covered
        // before the cancel token existed: the persistent artifact keys hash
        // this string, and a per-request deadline must not fragment the
        // cache (see `tmg_core::pipeline`'s key derivation).
        f.debug_struct("ModelChecker")
            .field("optimisations", &self.optimisations)
            .field("max_transitions", &self.max_transitions)
            .field("max_depth", &self.max_depth)
            .field("engine", &self.engine)
            .field("slicing", &self.slicing)
            .field("dedup_after_pops", &self.dedup_after_pops)
            .finish()
    }
}

/// Cap on remembered `(location, monitor, valuation)` states: beyond this the
/// search keeps running but stops deduplicating, bounding memory without
/// affecting soundness.
pub(crate) const VISITED_CAP: usize = 1 << 21;

/// Default for [`ModelChecker::dedup_after_pops`]: high enough that ordinary
/// test-data queries (including full scans of one 16-bit domain) never pay
/// the hashing cost, low enough that a genuine state-space blow-up starts
/// pruning long before the transition budget is gone.
const DEDUP_AFTER_POPS_DEFAULT: u64 = 1 << 20;

impl ModelChecker {
    /// A checker with all optimisations enabled and default budgets.
    pub fn new() -> ModelChecker {
        ModelChecker::with_optimisations(Optimisations::all())
    }

    /// A checker with the given optimisation set.
    pub fn with_optimisations(optimisations: Optimisations) -> ModelChecker {
        ModelChecker {
            optimisations,
            max_transitions: 50_000_000,
            max_depth: 100_000,
            engine: SearchEngine::default(),
            slicing: true,
            dedup_after_pops: DEDUP_AFTER_POPS_DEFAULT,
            cancel: crate::cancel::CancelToken::none(),
        }
    }

    /// Sets the transition budget.
    pub fn with_budget(mut self, max_transitions: u64) -> ModelChecker {
        self.max_transitions = max_transitions;
        self
    }

    /// Selects the search engine.
    pub fn with_engine(mut self, engine: SearchEngine) -> ModelChecker {
        self.engine = engine;
        self
    }

    /// Enables or disables cone-of-influence slicing for multi-query batches
    /// (see [`ModelChecker::slicing`]; used by the bench to isolate the
    /// slicing speedup).
    pub fn with_slicing(mut self, slicing: bool) -> ModelChecker {
        self.slicing = slicing;
        self
    }

    /// Installs a cooperative cancellation token (see
    /// [`ModelChecker::cancel`]).  Does not affect artifact keys.
    pub fn with_cancel(mut self, cancel: crate::cancel::CancelToken) -> ModelChecker {
        self.cancel = cancel;
        self
    }

    /// Generates test data for `query` on `function`: applies the configured
    /// optimisations, encodes the function and searches for a witness.
    pub fn find_test_data(&self, function: &Function, query: &PathQuery) -> CheckResult {
        let (optimised, opt_report) =
            apply_optimisations_preserving(function, &self.optimisations, query.stmts());
        let model = encode_function(&optimised, &self.optimisations.encode_options());
        let mut result = self.check_model(&model, query);
        result.opt_report = opt_report;
        result
    }

    /// Runs the search on an already-encoded model.
    pub fn check_model(&self, model: &Model, query: &PathQuery) -> CheckResult {
        self.check_prepared(&PreparedModel::new(model), query)
    }

    /// Answers a batch of path queries over one function, sharing a single
    /// state-space exploration across all of them whenever that is provably
    /// equivalent to asking each query on its own.
    ///
    /// The shared path requires (a) the arena engine and (b) that the
    /// source-level optimisations produce the same function under every
    /// query's preserve set ([`crate::opt::shared_optimisation_for_queries`]);
    /// otherwise — and for the queries a budget-exhausted shared exploration
    /// leaves unresolved — the method falls back to per-query
    /// [`ModelChecker::find_test_data`].  Either way every returned
    /// [`CheckOutcome`] (verdict, witness and step count) is bit-identical to
    /// the undeduped reference search — and therefore to the single-query
    /// engines on every search that settles within the transition budget.
    /// Budget-limited searches carry the same caveat the arena engine's
    /// [`dedup_after_pops`](ModelChecker::dedup_after_pops) already
    /// documents: once adaptive revisit dedup engages (after 2²⁰ pops), a
    /// per-query arena search may settle a verdict the undeduped accounting
    /// reports as [`CheckOutcome::Unknown`].  Only the cost statistics always
    /// differ, because batched queries report the cost of the shared
    /// exploration.
    pub fn check_many(&self, function: &Function, queries: &[PathQuery]) -> Vec<CheckResult> {
        if queries.len() < 2 {
            return self.check_each(function, queries);
        }
        let union: HashSet<StmtId> = queries
            .iter()
            .flat_map(|q| q.stmts().iter().copied())
            .collect();
        match self.prepare_shared(function, union) {
            Some(shared) => self.check_many_shared(function, &shared, queries),
            // Some query's preserve set changes the optimised source: the
            // shared model would not be the model each query is defined over.
            None => self.check_each(function, queries),
        }
    }

    /// Optimises, encodes and prepares `function` once for every batch of
    /// path queries whose statements fall within `union`, or `None` when no
    /// single optimised source serves them all
    /// ([`crate::opt::shared_optimisation_for_queries`]).
    ///
    /// Because removal sets are anti-monotone in the preserve set, a model
    /// prepared for `union` is also valid for any batch whose statement
    /// union is a *subset* of `union` — so preparing once with the union of
    /// every branch statement of the function yields an artifact reusable
    /// across path bounds and across [`check_many_shared`] batches, which is
    /// exactly how the staged pipeline caches it.
    ///
    /// [`check_many_shared`]: ModelChecker::check_many_shared
    pub fn prepare_shared(
        &self,
        function: &Function,
        union: HashSet<StmtId>,
    ) -> Option<SharedCheckModel> {
        let (optimised, opt_report) =
            crate::opt::shared_optimisation_for_queries(function, &self.optimisations, &union)?;
        let model = encode_function(&optimised, &self.optimisations.encode_options());
        Some(SharedCheckModel {
            prepared: OwnedPreparedModel::new(model),
            opt_report,
            union,
        })
    }

    /// Like [`check_many`](ModelChecker::check_many), but against a model
    /// previously built by [`prepare_shared`](ModelChecker::prepare_shared),
    /// skipping the per-batch optimisation, encoding and preparation.
    ///
    /// Outcomes are identical to `check_many` (and therefore to per-query
    /// [`find_test_data`](ModelChecker::find_test_data)): when the shared
    /// optimisation check succeeded, the prepared model *is* the
    /// preserve-free optimised model regardless of which union it was
    /// verified with — and, by the anti-monotonicity argument of
    /// [`crate::opt::shared_optimisation_for_queries`], also the model each
    /// covered query's own preserve set would produce — so any covered
    /// batch (even a solo query) explores the same state space.  A query the
    /// shared model does not cover (a statement outside the prepared union)
    /// drops the whole batch back to `check_many`, which re-verifies with
    /// the batch's own union.
    pub fn check_many_shared(
        &self,
        function: &Function,
        shared: &SharedCheckModel,
        queries: &[PathQuery],
    ) -> Vec<CheckResult> {
        if !queries.iter().all(|q| shared.covers(q)) {
            return self.check_many(function, queries);
        }
        let prepared = shared.prepared.view();
        let off_shared = |q: &PathQuery| {
            // Between fallback searches is the last cooperative point before
            // a potentially long single-query exploration.
            self.cancel.checkpoint();
            let mut result = self.check_prepared(&prepared, q);
            result.opt_report = shared.opt_report.clone();
            result
        };
        if queries.len() < 2 {
            // Solo batches answer straight off the cached model: the search
            // is the single-query arena search over the identical model, so
            // nothing is shared and nothing needs re-encoding.
            return queries.iter().map(off_shared).collect();
        }
        if self.slicing {
            if let Some(results) = self.check_many_sliced(function, shared, queries) {
                return results;
            }
        }
        let explored = crate::multiquery::MultiQueryEngine::explore(self, &prepared, queries);
        queries
            .iter()
            .enumerate()
            .map(|(i, q)| match explored.result(i) {
                Some(mut result) => {
                    result.opt_report = shared.opt_report.clone();
                    result
                }
                // Budget exhausted before this query settled: re-ask alone,
                // still on the cached model.
                None => off_shared(q),
            })
            .collect()
    }

    /// The slicing fast path of [`check_many_shared`]: builds a
    /// cone-of-influence slice of `function` for this batch's statement
    /// union, explores the (smaller) sliced model instead of the full one,
    /// and completes every feasible witness against the full model.
    ///
    /// Returns `None` when slicing cannot help — the cone covers the whole
    /// function, or the sliced source fails the shared-optimisation
    /// preserve-insensitivity check — in which case the caller proceeds on
    /// the full cached model, bit-identically to a checker with slicing
    /// disabled.
    ///
    /// Verdicts are preserved by construction (see
    /// [`crate::opt::slice_for_queries`]); witnesses and step counts are
    /// produced by a full-model re-search with the slice's relevant inputs
    /// pinned ([`ModelChecker::check_prepared_pinned`]), and any completion
    /// that fails to replay feasibly drops that query back to the ordinary
    /// per-query search — the slice never gets the last word on a witness.
    /// The one intended divergence: a query whose full-model search would
    /// exhaust [`ModelChecker::max_transitions`] may settle to a definite
    /// verdict on the much cheaper slice (the same strengthening the arena
    /// engine's adaptive dedup has always documented).
    ///
    /// [`check_many_shared`]: ModelChecker::check_many_shared
    fn check_many_sliced(
        &self,
        function: &Function,
        shared: &SharedCheckModel,
        queries: &[PathQuery],
    ) -> Option<Vec<CheckResult>> {
        let union: HashSet<StmtId> = queries
            .iter()
            .flat_map(|q| q.stmts().iter().copied())
            .collect();
        let Some((sliced_fn, slice_report)) = crate::opt::slice_for_queries(function, &union)
        else {
            crate::metrics::add_slice_identity_batches(1);
            return None;
        };
        let (optimised, _) =
            crate::opt::shared_optimisation_for_queries(&sliced_fn, &self.optimisations, &union)?;
        let sliced_model = encode_function(&optimised, &self.optimisations.encode_options());
        let sliced = OwnedPreparedModel::new(sliced_model);
        crate::metrics::add_sliced_batches(1);
        crate::metrics::add_sliced_stmts(slice_report.removed_stmts as u64);
        crate::metrics::add_sliced_vars(slice_report.removed_vars.len() as u64);

        let full = shared.prepared.view();
        // Full-model state-vector indices of the inputs the slice actually
        // constrains; everything else is left free so the completing
        // re-search chooses exactly the values the unpinned full search
        // would.
        let relevant_inputs: Vec<(usize, String)> = shared
            .model()
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| {
                v.role == VarRole::Input && slice_report.constrained_inputs.contains(&v.name)
            })
            .map(|(i, v)| (i, v.name.clone()))
            .collect();

        let explored = crate::multiquery::MultiQueryEngine::explore(self, &sliced.view(), queries);
        let results = queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let Some(result) = explored.result(i) else {
                    // Shared budget exhausted before this query settled.
                    let mut r = self.check_prepared(&full, q);
                    r.opt_report = shared.opt_report.clone();
                    return r;
                };
                let mut result = match result.outcome {
                    CheckOutcome::Feasible { ref witness, .. } => {
                        let pins: Vec<(usize, i64)> = relevant_inputs
                            .iter()
                            .filter_map(|(idx, name)| witness.get(name).map(|v| (*idx, v)))
                            .collect();
                        let completed = {
                            let _span = tmg_obs::span("checker:witness-completion");
                            self.check_prepared_pinned(&full, q, &pins)
                        };
                        match completed.outcome {
                            CheckOutcome::Feasible { witness, steps } => {
                                crate::metrics::add_witnesses_reconstructed(1);
                                let mut r = result;
                                r.stats.witness_steps = Some(steps);
                                r.outcome = CheckOutcome::Feasible { witness, steps };
                                r
                            }
                            // The completion oracle disagreed with the
                            // slice: distrust it and re-ask the full model
                            // from scratch.
                            _ => self.check_prepared(&full, q),
                        }
                    }
                    _ => result,
                };
                result.opt_report = shared.opt_report.clone();
                result
            })
            .collect();
        Some(results)
    }

    /// The per-query reference path: one independent search per query.
    fn check_each(&self, function: &Function, queries: &[PathQuery]) -> Vec<CheckResult> {
        queries
            .iter()
            .map(|q| self.find_test_data(function, q))
            .collect()
    }

    /// Runs the arena search on a [`PreparedModel`], reusing its outgoing
    /// transition index and pre-resolved expressions across queries.
    pub fn check_prepared(&self, prepared: &PreparedModel<'_>, query: &PathQuery) -> CheckResult {
        self.check_prepared_pinned(prepared, query, &[])
    }

    /// Like [`check_prepared`](ModelChecker::check_prepared), but with the
    /// given `(state-vector index, value)` pairs *pinned* in the initial
    /// state: the search never splits over a pinned variable and every
    /// witness carries the pinned values.  This is the witness-completion
    /// oracle of the slicing path: re-searching the full model with a sliced
    /// witness's relevant inputs pinned yields a witness and step count that
    /// are genuine full-model search results (the unconstrained splits take
    /// their lowest completing values, exactly as an unpinned search's
    /// would).  The completed witness usually coincides bit-for-bit with the
    /// unpinned full-model search's — the exception is a batch whose
    /// *dropped* statements read a relevant input before the kept code does,
    /// which shifts the full search's split order and can make it settle on
    /// a different (equally valid) lex-minimal assignment.  The binding
    /// contract is therefore the one the slicing equivalence suite pins:
    /// verdicts are bit-identical, and every witness is a feasible
    /// full-model witness for its query.
    pub(crate) fn check_prepared_pinned(
        &self,
        prepared: &PreparedModel<'_>,
        query: &PathQuery,
        pins: &[(usize, i64)],
    ) -> CheckResult {
        let start = Instant::now();
        let model = prepared.model;
        let vars_n = model.vars.len();
        let words = vars_n.div_ceil(64).max(1);

        let mut stats = CheckStats {
            state_bits: model.state_bits(),
            state_bytes: model.state_bytes(),
            model_transitions: model.transitions.len(),
            model_vars: model.vars.len(),
            ..CheckStats::default()
        };

        let pool = &prepared.program.pool;
        let mut arena = StateArena::new(vars_n, words);
        // Initial state.
        {
            let mut vals = vec![0i64; vars_n];
            let mut known = vec![0u64; words];
            for (i, var) in model.vars.iter().enumerate() {
                if let Some(init) = var.init {
                    vals[i] = init;
                    known[i >> 6] |= 1 << (i & 63);
                }
            }
            for &(idx, value) in pins {
                if idx < vars_n {
                    vals[idx] = value;
                    known[idx >> 6] |= 1 << (idx & 63);
                }
            }
            arena.push(model.initial.index() as u32, 0, 0, &vals, &known);
        }
        stats.states_created = 1;

        // Scratch buffers reused across the whole search: the popped state
        // and the child state under construction.
        let mut cur_vals = vec![0i64; vars_n];
        let mut cur_known = vec![0u64; words];
        let mut child_vals = vec![0i64; vars_n];
        let mut child_known = vec![0u64; words];
        let mut enabled: Vec<usize> = Vec::with_capacity(8);
        let mut effect_cache: Vec<Eval> = Vec::with_capacity(8);
        let mut effect_offsets: Vec<usize> = Vec::with_capacity(8);
        let mut visited: FxHashMap<Box<[u64]>, u64> = FxHashMap::default();
        let mut key_buf: Vec<u64> = Vec::with_capacity(1 + words + vars_n);
        let mut pops: u64 = 0;
        let mut dedup_active = true;
        let mut dedup_lookups: u64 = 0;
        let mut dedup_hits: u64 = 0;

        let mut outcome = CheckOutcome::Infeasible;
        'search: while let Some(entry) = arena.pop(&mut cur_vals, &mut cur_known) {
            if stats.transitions_fired + stats.states_created >= self.max_transitions {
                outcome = CheckOutcome::Unknown;
                break 'search;
            }
            pops += 1;
            stats.max_depth = stats.max_depth.max(entry.depth);
            if entry.monitor as usize == query.decisions.len() {
                outcome = CheckOutcome::Feasible {
                    witness: witness_packed(model, &cur_vals, &cur_known),
                    steps: entry.depth,
                };
                stats.witness_steps = Some(entry.depth);
                break 'search;
            }
            if entry.depth >= self.max_depth {
                continue;
            }
            let transitions = &prepared.program.outgoing[entry.loc as usize];
            if transitions.is_empty() {
                continue;
            }

            // Revisit dedup: a state identical in (location, monitor,
            // valuation) reached again at the same or greater depth explores
            // a subtree that has already been (or is being) explored with at
            // least as much depth headroom — skip it.  Engages only once the
            // search is large enough to amortise the hashing, and disables
            // itself (dropping the table) when the hit rate shows the state
            // space is not reconverging — splits over wide input domains
            // produce millions of unique states that would only burn memory.
            if dedup_active && pops > self.dedup_after_pops && visited.len() >= VISITED_CAP {
                // Table full: stop deduplicating and release the memory
                // instead of carrying the peak allocation through the rest
                // of the search.
                dedup_active = false;
                visited = FxHashMap::default();
            }
            if dedup_active && pops > self.dedup_after_pops {
                dedup_lookups += 1;
                key_buf.clear();
                key_buf.push(u64::from(entry.loc) | (u64::from(entry.monitor) << 32));
                key_buf.extend_from_slice(&cur_known);
                key_buf.extend(cur_vals.iter().map(|v| *v as u64));
                match visited.get_mut(key_buf.as_slice()) {
                    Some(best_depth) => {
                        if *best_depth <= entry.depth {
                            dedup_hits += 1;
                            continue;
                        }
                        *best_depth = entry.depth;
                    }
                    None => {
                        visited.insert(key_buf.clone().into_boxed_slice(), entry.depth);
                    }
                }
                if dedup_lookups & 0xFFFF == 0 && dedup_hits * 10 < dedup_lookups {
                    dedup_active = false;
                    visited = FxHashMap::default();
                }
            }

            // First pass: find out whether deciding the enabled set requires
            // the value of a still-unknown variable.
            let mut split_var: Option<usize> = None;
            enabled.clear();
            for (i, t) in transitions.iter().enumerate() {
                match eval_guard(pool, t, &cur_vals, &cur_known) {
                    Eval::Known(v) => {
                        if v != 0 {
                            enabled.push(i);
                        }
                    }
                    Eval::Unknown(var) => {
                        split_var = Some(var);
                        break;
                    }
                    Eval::Error => {}
                }
            }
            effect_cache.clear();
            effect_offsets.clear();
            if split_var.is_none() {
                // Effects may also read unknown variables; evaluate each
                // enabled transition's effects once here and cache the
                // values so the fire loop does not walk the expressions a
                // second time.
                'effects: for &i in &enabled {
                    effect_offsets.push(effect_cache.len());
                    for &(_, e) in &transitions[i].effect {
                        let value = eval_packed(pool, e, &cur_vals, &cur_known);
                        if let Eval::Unknown(var) = value {
                            split_var = Some(var);
                            break 'effects;
                        }
                        effect_cache.push(value);
                    }
                }
            }
            if let Some(var) = split_var {
                // Split lazily: the parent valuation is stored once and the
                // children are materialised value-by-value as they are
                // popped, in ascending order (deterministic witnesses with
                // minimal values), costing O(1) arena space per split.  The
                // children still count towards the state budget up front,
                // exactly like the baseline engine's eager pushes.
                let (lo, hi) = model.vars[var].domain;
                stats.states_created += model.vars[var].domain_size();
                arena.push_split(
                    entry.loc,
                    entry.monitor,
                    entry.depth,
                    &cur_vals,
                    &cur_known,
                    var as u32,
                    lo,
                    hi,
                );
                continue;
            }
            // Fire enabled transitions (in reverse so the first is explored
            // first by the DFS).
            for pos in (0..enabled.len()).rev() {
                let t: &PreparedTransition = &transitions[enabled[pos]];
                if stats.transitions_fired >= self.max_transitions {
                    outcome = CheckOutcome::Unknown;
                    break 'search;
                }
                // Path monitor.
                let mut monitor = entry.monitor as usize;
                if let Some((stmt, choice)) = &t.decision {
                    if monitor < query.decisions.len() {
                        let (expected_stmt, expected_choice) = query.decisions[monitor];
                        if *stmt == expected_stmt {
                            if *choice == expected_choice {
                                monitor += 1;
                            } else {
                                // Wrong decision at a constrained branch: this
                                // run can no longer follow the path.
                                continue;
                            }
                        }
                    }
                }
                child_vals.copy_from_slice(&cur_vals);
                child_known.copy_from_slice(&cur_known);
                let mut failed = false;
                let cached = &effect_cache[effect_offsets[pos]..];
                for (&(target, _), value) in t.effect.iter().zip(cached) {
                    match *value {
                        Eval::Known(v) => {
                            let target = target as usize;
                            if target >= vars_n {
                                failed = true;
                                break;
                            }
                            child_vals[target] = model.vars[target].ty.wrap(v);
                            child_known[target >> 6] |= 1 << (target & 63);
                        }
                        // Unknown cannot be cached (it would have split);
                        // Error skips the transition like the baseline.
                        Eval::Unknown(_) | Eval::Error => {
                            failed = true;
                            break;
                        }
                    }
                }
                if failed {
                    continue;
                }
                stats.transitions_fired += 1;
                arena.push(
                    t.to,
                    monitor as u32,
                    entry.depth + 1,
                    &child_vals,
                    &child_known,
                );
                stats.states_created += 1;
            }
        }

        stats.memory_estimate_bytes = stats.states_created * stats.state_bytes;
        stats.duration = start.elapsed();
        CheckResult {
            outcome,
            stats,
            opt_report: OptReport::default(),
        }
    }
}

/// An optimised, encoded and prepared model valid for every path-query batch
/// whose statement union is a subset of the union it was built with.
///
/// Built by [`ModelChecker::prepare_shared`]; consumed by
/// [`ModelChecker::check_many_shared`].  Owning (rather than borrowing) the
/// model makes it the payload of the pipeline's `PreparedModelArtifact`:
/// cached once per `(function, checker configuration)` and shared across
/// path bounds, repeated analyses and threads.
#[derive(Debug, Clone)]
pub struct SharedCheckModel {
    prepared: OwnedPreparedModel,
    opt_report: OptReport,
    union: HashSet<StmtId>,
}

impl SharedCheckModel {
    /// Reassembles a shared model from its encoded parts — the
    /// deserialization hook of the persistent artifact store.  The model
    /// preparation (outgoing-transition index, pre-resolved expression pool)
    /// is re-derived here, so the result behaves identically to the one
    /// [`ModelChecker::prepare_shared`] originally built; only the
    /// optimisation and encoding passes that produced `model` are skipped.
    pub fn from_parts(
        model: Model,
        opt_report: OptReport,
        union: HashSet<StmtId>,
    ) -> SharedCheckModel {
        SharedCheckModel {
            prepared: OwnedPreparedModel::new(model),
            opt_report,
            union,
        }
    }

    /// The encoded transition-system model.
    pub fn model(&self) -> &Model {
        self.prepared.model()
    }

    /// What the source-level optimisation passes did.
    pub fn opt_report(&self) -> &OptReport {
        &self.opt_report
    }

    /// The preserve-set union the model was verified with (every query whose
    /// statements fall inside it is covered).
    pub fn union(&self) -> &HashSet<StmtId> {
        &self.union
    }

    /// Whether the shared model is valid for `query` (every statement the
    /// query mentions was in the preserve union the model was verified with).
    pub fn covers(&self, query: &PathQuery) -> bool {
        query.stmts().is_subset(&self.union)
    }
}

/// How an arena entry materialises its state.
#[derive(Debug, Clone, Copy)]
enum EntryKind {
    /// The entry owns the top packed block verbatim.
    Concrete,
    /// Lazy domain split: the entry owns the top packed block as the *parent*
    /// valuation and materialises one child per pop, assigning `next` to
    /// variable `var`, until `next` passes `hi`.
    Split { var: u32, next: i64, hi: i64 },
}

/// One entry of the packed state stack.
#[derive(Debug, Clone, Copy)]
struct StateEntry {
    loc: u32,
    monitor: u32,
    depth: u64,
    kind: EntryKind,
}

/// Popped state metadata.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PoppedState {
    pub(crate) loc: u32,
    pub(crate) monitor: u32,
    pub(crate) depth: u64,
}

/// One frontier work item extracted from a paused arena: a concrete pending
/// state, or a pending lazy split (`split = (var, lo, hi)`) whose children
/// materialise in ascending value order.  The multi-query explorer chunks
/// these into deterministic shards.
#[derive(Debug, Clone)]
pub(crate) struct FrontierEntry {
    pub(crate) loc: u32,
    pub(crate) monitor: u32,
    pub(crate) depth: u64,
    pub(crate) vals: Vec<i64>,
    pub(crate) known: Vec<u64>,
    pub(crate) split: Option<(u32, i64, i64)>,
}

/// Stack-disciplined arena of packed states: entry metadata in one vector,
/// values and known-bit masks in parallel flat arrays.  Push appends, pop
/// copies into caller scratch and truncates — no per-state allocation ever.
/// Domain splits are stored as a single parent block plus a value cursor, so
/// splitting over a 16-bit domain costs one block, not 65536.
#[derive(Debug)]
pub(crate) struct StateArena {
    vars: usize,
    words: usize,
    entries: Vec<StateEntry>,
    values: Vec<i64>,
    known: Vec<u64>,
}

impl StateArena {
    pub(crate) fn new(vars: usize, words: usize) -> StateArena {
        // Pre-size for a few hundred live states; grows amortised afterwards.
        let prealloc = 256;
        StateArena {
            vars,
            words,
            entries: Vec::with_capacity(prealloc),
            values: Vec::with_capacity(prealloc * vars),
            known: Vec::with_capacity(prealloc * words),
        }
    }

    pub(crate) fn push(&mut self, loc: u32, monitor: u32, depth: u64, vals: &[i64], known: &[u64]) {
        debug_assert_eq!(vals.len(), self.vars);
        debug_assert_eq!(known.len(), self.words);
        self.entries.push(StateEntry {
            loc,
            monitor,
            depth,
            kind: EntryKind::Concrete,
        });
        self.values.extend_from_slice(vals);
        self.known.extend_from_slice(known);
    }

    /// Pushes a lazy split over `var`'s domain `lo..=hi` of the given parent
    /// valuation.  Children pop in ascending value order.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push_split(
        &mut self,
        loc: u32,
        monitor: u32,
        depth: u64,
        vals: &[i64],
        known: &[u64],
        var: u32,
        lo: i64,
        hi: i64,
    ) {
        debug_assert!(lo <= hi);
        self.entries.push(StateEntry {
            loc,
            monitor,
            depth,
            kind: EntryKind::Split { var, next: lo, hi },
        });
        self.values.extend_from_slice(vals);
        self.known.extend_from_slice(known);
    }

    /// Remaining width of every pending entry, in pop order units: `1` for a
    /// concrete entry, the number of unmaterialised children for a split.
    pub(crate) fn frontier_shape(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|e| match e.kind {
            EntryKind::Concrete => 1,
            EntryKind::Split { next, hi, .. } => (hi - next + 1).max(1) as u64,
        })
    }

    /// Consumes the arena into frontier entries in **pop order** (top of the
    /// stack first), each owning its packed state block.
    pub(crate) fn drain_frontier(&mut self) -> Vec<FrontierEntry> {
        let mut out = Vec::with_capacity(self.entries.len());
        for (k, entry) in self.entries.iter().enumerate().rev() {
            let vals = self.values[k * self.vars..(k + 1) * self.vars].to_vec();
            let known = self.known[k * self.words..(k + 1) * self.words].to_vec();
            out.push(FrontierEntry {
                loc: entry.loc,
                monitor: entry.monitor,
                depth: entry.depth,
                vals,
                known,
                split: match entry.kind {
                    EntryKind::Concrete => None,
                    EntryKind::Split { var, next, hi } => Some((var, next, hi)),
                },
            });
        }
        self.entries.clear();
        self.values.clear();
        self.known.clear();
        out
    }

    /// Pushes a frontier entry back onto the stack (shard seeding).
    pub(crate) fn push_frontier(&mut self, entry: &FrontierEntry) {
        match entry.split {
            None => self.push(
                entry.loc,
                entry.monitor,
                entry.depth,
                &entry.vals,
                &entry.known,
            ),
            Some((var, lo, hi)) => self.push_split(
                entry.loc,
                entry.monitor,
                entry.depth,
                &entry.vals,
                &entry.known,
                var,
                lo,
                hi,
            ),
        }
    }

    pub(crate) fn pop(&mut self, vals: &mut [i64], known: &mut [u64]) -> Option<PoppedState> {
        let entry = self.entries.last_mut()?;
        let popped = PoppedState {
            loc: entry.loc,
            monitor: entry.monitor,
            depth: entry.depth,
        };
        let vbase = self.values.len() - self.vars;
        let kbase = self.known.len() - self.words;
        vals.copy_from_slice(&self.values[vbase..]);
        known.copy_from_slice(&self.known[kbase..]);
        match &mut entry.kind {
            EntryKind::Concrete => {
                self.entries.pop();
                self.values.truncate(vbase);
                self.known.truncate(kbase);
            }
            EntryKind::Split { var, next, hi } => {
                let v = *var as usize;
                vals[v] = *next;
                known[v >> 6] |= 1 << (v & 63);
                if *next < *hi {
                    // More children to come: advance the cursor in place —
                    // the entry and its parent block stay on the stack, so a
                    // wide split costs one cursor bump per child, not a
                    // pop/re-push of the entry.
                    *next += 1;
                } else {
                    // Last child consumed the block.
                    self.entries.pop();
                    self.values.truncate(vbase);
                    self.known.truncate(kbase);
                }
            }
        }
        Some(popped)
    }
}

pub(crate) fn witness_packed(model: &Model, vals: &[i64], known: &[u64]) -> InputVector {
    let mut witness = InputVector::new();
    for (idx, var) in model.vars.iter().enumerate() {
        if var.role == VarRole::Input {
            let value = if known[idx >> 6] & (1 << (idx & 63)) != 0 {
                vals[idx]
            } else {
                var.domain.0.max(0).min(var.domain.1)
            };
            witness.set(var.name.clone(), value);
        }
    }
    witness
}

#[derive(Clone, Copy)]
pub(crate) enum Eval {
    Known(i64),
    Unknown(usize),
    Error,
}

/// Evaluates a transition's guard over a packed state, taking the
/// specialised [`FastGuard`] path for the common single-comparison shapes
/// and falling back to the pool walk otherwise.  Semantics are identical to
/// evaluating the pre-resolved guard expression (comparisons cannot fault).
#[inline]
pub(crate) fn eval_guard(
    pool: &ExprPool,
    t: &PreparedTransition,
    vals: &[i64],
    known: &[u64],
) -> Eval {
    match t.fast_guard {
        FastGuard::Always => Eval::Known(1),
        FastGuard::Cmp {
            var,
            op,
            rhs,
            negate,
        } => {
            let v = var as usize;
            if known[v >> 6] & (1 << (v & 63)) != 0 {
                let holds = match eval_op(op, vals[v], rhs) {
                    Ok(r) => r != 0,
                    Err(()) => unreachable!("comparisons cannot fault"),
                };
                Eval::Known(i64::from(holds != negate))
            } else {
                Eval::Unknown(v)
            }
        }
        FastGuard::Node(g) => eval_packed(pool, g, vals, known),
    }
}

/// Evaluates the shared arithmetic of both engines.
fn eval_op(op: BinOp, l: i64, r: i64) -> Result<i64, ()> {
    Ok(match op {
        BinOp::Add => l.wrapping_add(r),
        BinOp::Sub => l.wrapping_sub(r),
        BinOp::Mul => l.wrapping_mul(r),
        BinOp::Div => {
            if r == 0 {
                return Err(());
            }
            l.wrapping_div(r)
        }
        BinOp::Mod => {
            if r == 0 {
                return Err(());
            }
            l.wrapping_rem(r)
        }
        BinOp::Lt => i64::from(l < r),
        BinOp::Le => i64::from(l <= r),
        BinOp::Gt => i64::from(l > r),
        BinOp::Ge => i64::from(l >= r),
        BinOp::Eq => i64::from(l == r),
        BinOp::Ne => i64::from(l != r),
        BinOp::And => i64::from(l != 0 && r != 0),
        BinOp::Or => i64::from(l != 0 || r != 0),
        BinOp::BitAnd => l & r,
        BinOp::BitOr => l | r,
        BinOp::BitXor => l ^ r,
        BinOp::Shl => l.wrapping_shl((r & 63) as u32),
        BinOp::Shr => l.wrapping_shr((r & 63) as u32),
    })
}

fn eval_unop(op: UnOp, v: i64) -> i64 {
    match op {
        UnOp::Neg => v.wrapping_neg(),
        UnOp::Not => i64::from(v == 0),
        UnOp::BitNot => !v,
    }
}

/// Partial evaluation of a pool-flattened expression over a packed state.
pub(crate) fn eval_packed(pool: &ExprPool, id: NodeId, vals: &[i64], known: &[u64]) -> Eval {
    match pool.node(id) {
        INode::Int(v) => Eval::Known(v),
        INode::Var(idx) => {
            let idx = idx as usize;
            if known[idx >> 6] & (1 << (idx & 63)) != 0 {
                Eval::Known(vals[idx])
            } else {
                Eval::Unknown(idx)
            }
        }
        INode::UnknownVar => Eval::Error,
        INode::Unary { op, operand } => match eval_packed(pool, operand, vals, known) {
            Eval::Known(v) => Eval::Known(eval_unop(op, v)),
            other => other,
        },
        INode::Binary { op, lhs, rhs } => {
            let l = match eval_packed(pool, lhs, vals, known) {
                Eval::Known(v) => v,
                other => return other,
            };
            // Short-circuit.
            if op == BinOp::And && l == 0 {
                return Eval::Known(0);
            }
            if op == BinOp::Or && l != 0 {
                return Eval::Known(1);
            }
            let r = match eval_packed(pool, rhs, vals, known) {
                Eval::Known(v) => v,
                other => return other,
            };
            match eval_op(op, l, r) {
                Ok(v) => Eval::Known(v),
                Err(()) => Eval::Error,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_cfg::{build_cfg, enumerate_region_paths};
    use tmg_minic::parse_function;
    use tmg_minic::parse_program;
    use tmg_minic::Interpreter;

    fn checker() -> ModelChecker {
        ModelChecker::new()
    }

    fn paths_of(src: &str) -> (Function, Vec<tmg_cfg::PathSpec>) {
        let f = parse_function(src).expect("parse");
        let lowered = build_cfg(&f);
        let paths =
            enumerate_region_paths(&lowered.cfg, lowered.regions.root(), 10_000).expect("paths");
        (f, paths)
    }

    use tmg_minic::ast::Function;

    #[test]
    fn finds_witness_for_every_feasible_path_of_a_nested_if() {
        let src = r#"
            void f(char a __range(0, 4), char b __range(0, 4)) {
                if (a > 2) { if (b == 1) { x(); } else { y(); } } else { z(); }
            }
        "#;
        let (f, paths) = paths_of(src);
        assert_eq!(paths.len(), 3);
        for path in &paths {
            let result = checker().find_test_data(&f, &PathQuery::new(path.decisions.clone()));
            let witness = result.outcome.witness().expect("feasible path").clone();
            // Replay on the interpreter and confirm the path is taken.
            let program = parse_program(src).expect("parse");
            let out = Interpreter::new(&program).run("f", &witness).expect("run");
            assert!(path.matches_trace(&out.trace.branch_signature()));
        }
    }

    #[test]
    fn proves_contradictory_paths_infeasible() {
        // a cannot be both > 2 and < 1.
        let src = r#"
            void f(char a __range(0, 4)) {
                if (a > 2) { x(); }
                if (a < 1) { y(); }
            }
        "#;
        let (f, paths) = paths_of(src);
        // The Then/Then path is infeasible.
        let infeasible: Vec<_> = paths
            .iter()
            .filter(|p| p.decisions.iter().all(|(_, c)| *c == BranchChoice::Then))
            .collect();
        assert_eq!(infeasible.len(), 1);
        let result = checker().find_test_data(&f, &PathQuery::new(infeasible[0].decisions.clone()));
        assert!(result.outcome.is_infeasible());
        // Feasible ones are found.
        let feasible = paths
            .iter()
            .filter(|p| !p.decisions.iter().all(|(_, c)| *c == BranchChoice::Then))
            .count();
        assert_eq!(feasible, 3);
    }

    #[test]
    fn switch_paths_yield_matching_selector_values() {
        let src = r#"
            void f(char s __range(0, 5)) {
                switch (s) { case 0: a0(); break; case 3: a3(); break; default: d(); break; }
            }
        "#;
        let (f, paths) = paths_of(src);
        for path in &paths {
            let result = checker().find_test_data(&f, &PathQuery::new(path.decisions.clone()));
            let witness = result.outcome.witness().expect("feasible").clone();
            match path.decisions[0].1 {
                BranchChoice::Case(v) => assert_eq!(witness.get("s"), Some(v)),
                BranchChoice::Default => {
                    let s = witness.get("s").expect("s");
                    assert!(s != 0 && s != 3);
                }
                other => panic!("unexpected decision {other:?}"),
            }
        }
    }

    #[test]
    fn any_execution_query_is_trivially_feasible() {
        let f = parse_function("void f(int a) { if (a) { g(); } }").expect("parse");
        let result = checker().find_test_data(&f, &PathQuery::any_execution());
        assert!(result.outcome.witness().is_some());
    }

    #[test]
    fn loop_iteration_counts_can_be_forced() {
        let src = r#"
            void f(char n __range(0, 3)) {
                char i = 0;
                while (i < n) __bound(3) { i = i + 1; }
            }
        "#;
        let f = parse_function(src).expect("parse");
        let lowered = build_cfg(&f);
        let paths =
            enumerate_region_paths(&lowered.cfg, lowered.regions.root(), 100).expect("paths");
        assert_eq!(paths.len(), 4);
        for (k, path) in paths.iter().enumerate() {
            let result = checker().find_test_data(&f, &PathQuery::new(path.decisions.clone()));
            let witness = result.outcome.witness().expect("feasible").clone();
            // Path k iterates the loop `iterations` times; the witness must
            // request exactly that many.
            let iterations = path
                .decisions
                .iter()
                .filter(|(_, c)| *c == BranchChoice::LoopIterate)
                .count() as i64;
            assert_eq!(witness.get("n"), Some(iterations), "path {k}");
        }
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let src = "void f(int a, int b) { if (a == 12345 && b == 23456) { x(); } }";
        let f = parse_function(src).expect("parse");
        let mut paths = {
            let lowered = build_cfg(&f);
            enumerate_region_paths(&lowered.cfg, lowered.regions.root(), 10).expect("paths")
        };
        let then_path = paths.remove(0);
        let tight = ModelChecker::with_optimisations(Optimisations::none()).with_budget(1_000);
        let result = tight.find_test_data(&f, &PathQuery::new(then_path.decisions));
        assert_eq!(result.outcome, CheckOutcome::Unknown);
    }

    #[test]
    fn optimisations_reduce_search_cost() {
        let src = r#"
            void f(bool go, char speed __range(0, 2)) {
                char tmp; char unused1; char unused2; char dead;
                tmp = speed + 1;
                dead = dead + 1;
                if (go) { if (tmp == 3) { deep(); } else { shallow(); } } else { off(); }
            }
        "#;
        let (f, paths) = paths_of(src);
        let deep_path = paths
            .iter()
            .find(|p| {
                p.decisions.len() == 2 && p.decisions.iter().all(|(_, c)| *c == BranchChoice::Then)
            })
            .expect("deep path");
        let naive = ModelChecker::with_optimisations(Optimisations::none())
            .find_test_data(&f, &PathQuery::new(deep_path.decisions.clone()));
        let optimised = ModelChecker::with_optimisations(Optimisations::all())
            .find_test_data(&f, &PathQuery::new(deep_path.decisions.clone()));
        assert!(naive.outcome.witness().is_some());
        assert!(optimised.outcome.witness().is_some());
        assert!(
            optimised.stats.transitions_fired < naive.stats.transitions_fired,
            "optimised {} vs naive {}",
            optimised.stats.transitions_fired,
            naive.stats.transitions_fired
        );
        assert!(optimised.stats.state_bits < naive.stats.state_bits);
        assert!(optimised.stats.memory_estimate_bytes < naive.stats.memory_estimate_bytes);
    }

    #[test]
    fn statement_concatenation_shortens_witness_runs() {
        let src = r#"
            void f(bool go) {
                char a; char b; char c; char d;
                a = 1; b = 2; c = 3; d = 4;
                if (go) { x(); }
            }
        "#;
        let (f, paths) = paths_of(src);
        let path = PathQuery::new(paths[0].decisions.clone());
        let plain =
            ModelChecker::with_optimisations(Optimisations::none()).find_test_data(&f, &path);
        let concat = ModelChecker::with_optimisations(Optimisations {
            statement_concatenation: true,
            ..Optimisations::none()
        })
        .find_test_data(&f, &path);
        let plain_steps = plain.stats.witness_steps.expect("witness");
        let concat_steps = concat.stats.witness_steps.expect("witness");
        assert!(concat_steps < plain_steps, "{concat_steps} < {plain_steps}");
    }

    #[test]
    fn stats_are_populated() {
        let f = parse_function("void f(bool a) { if (a) { x(); } }").expect("parse");
        let result = checker().find_test_data(&f, &PathQuery::any_execution());
        assert!(result.stats.state_bits > 0);
        assert!(result.stats.model_transitions > 0);
        assert!(result.stats.states_created > 0);
        assert_eq!(
            result.stats.memory_estimate_bytes,
            result.stats.states_created * result.stats.state_bytes
        );
    }

    #[test]
    fn from_parts_rebuilds_an_equivalent_shared_model() {
        let src = r#"
            void f(char a __range(0, 4), char b __range(0, 3)) {
                if (a > 2) { x(); }
                if (a < 1) { y(); }
                if (b == 2) { z(); } else { w(); }
            }
        "#;
        let (f, paths) = paths_of(src);
        let queries: Vec<PathQuery> = paths
            .iter()
            .map(|p| PathQuery::new(p.decisions.clone()))
            .collect();
        let union: HashSet<StmtId> = queries
            .iter()
            .flat_map(|q| q.stmts().iter().copied())
            .collect();
        let mc = ModelChecker::new();
        let original = mc.prepare_shared(&f, union).expect("shared model");
        // Reassemble from the encoded parts, as the persistent store does
        // after a disk round-trip.
        let rebuilt = SharedCheckModel::from_parts(
            original.model().clone(),
            original.opt_report().clone(),
            original.union().clone(),
        );
        assert_eq!(original.model(), rebuilt.model());
        assert_eq!(original.opt_report(), rebuilt.opt_report());
        assert_eq!(original.union(), rebuilt.union());
        let via_original = mc.check_many_shared(&f, &original, &queries);
        let via_rebuilt = mc.check_many_shared(&f, &rebuilt, &queries);
        for (a, b) in via_original.iter().zip(&via_rebuilt) {
            assert_eq!(a.outcome, b.outcome, "rebuilt model diverges");
        }
    }

    #[test]
    fn prepared_model_is_reusable_across_queries() {
        let src = r#"
            void f(char a __range(0, 4), char b __range(0, 4)) {
                if (a > 2) { if (b == 1) { x(); } else { y(); } } else { z(); }
            }
        "#;
        let (f, paths) = paths_of(src);
        let model = crate::encode::encode_function(&f, &Optimisations::all().encode_options());
        let prepared = PreparedModel::new(&model);
        let mc = ModelChecker::new();
        for path in &paths {
            let query = PathQuery::new(path.decisions.clone());
            let via_prepared = mc.check_prepared(&prepared, &query);
            let via_model = mc.check_model(&model, &query);
            assert_eq!(via_prepared.outcome, via_model.outcome);
        }
    }

    #[test]
    fn arena_engine_is_the_default() {
        assert_eq!(ModelChecker::new().engine, SearchEngine::Arena);
    }

    #[test]
    fn shared_model_batches_agree_with_check_many_and_per_query() {
        // The shared model is prepared once with the union of *every* branch
        // statement (as the pipeline caches it), then answers batches whose
        // unions are strict subsets — outcomes must match both `check_many`
        // and the per-query reference.
        let src = r#"
            void f(char a __range(0, 4), char b __range(0, 3)) {
                if (a > 2) { x(); }
                if (a < 1) { y(); }
                if (b == 2) { z(); } else { w(); }
            }
        "#;
        let (f, paths) = paths_of(src);
        assert!(paths.len() >= 6);
        let all_queries: Vec<PathQuery> = paths
            .iter()
            .map(|p| PathQuery::new(p.decisions.clone()))
            .collect();
        let union: HashSet<StmtId> = all_queries
            .iter()
            .flat_map(|q| q.stmts().iter().copied())
            .collect();
        let mc = ModelChecker::new();
        let shared = mc
            .prepare_shared(&f, union)
            .expect("shared optimisation holds for plain branch code");
        // Full batch and a sub-batch (subset union) both go through the
        // cached artifact.
        for queries in [&all_queries[..], &all_queries[..2]] {
            let via_shared = mc.check_many_shared(&f, &shared, queries);
            let via_many = mc.check_many(&f, queries);
            for ((s, m), q) in via_shared.iter().zip(&via_many).zip(queries) {
                assert_eq!(s.outcome, m.outcome, "shared vs check_many");
                let single = mc.find_test_data(&f, q);
                assert_eq!(s.outcome, single.outcome, "shared vs per-query");
            }
        }
        // A query outside the prepared union falls back without changing
        // verdicts.
        let foreign = PathQuery::new(vec![(StmtId(9999), BranchChoice::Then)]);
        assert!(!shared.covers(&foreign));
        let mixed = vec![all_queries[0].clone(), foreign.clone()];
        let via_shared = mc.check_many_shared(&f, &shared, &mixed);
        let via_many = mc.check_many(&f, &mixed);
        for (s, m) in via_shared.iter().zip(&via_many) {
            assert_eq!(s.outcome, m.outcome);
        }
        assert!(!shared.model().transitions.is_empty());
    }

    #[test]
    fn dedup_preserves_verdicts_and_witnesses() {
        // Reconvergent control flow (branches that do not touch state) is
        // where revisit dedup prunes; forcing it on from the first pop must
        // not change any verdict or witness relative to a search whose dedup
        // never engages.
        let src = r#"
            void f(char a __range(0, 6), char b __range(0, 6)) {
                if (a > 1) { p1(); } else { p2(); }
                if (a > 3) { p3(); } else { p4(); }
                if (b == 5) { p5(); }
            }
        "#;
        let (f, paths) = paths_of(src);
        assert!(paths.len() >= 8);
        for path in &paths {
            let query = PathQuery::new(path.decisions.clone());
            let mut eager = ModelChecker::new();
            eager.dedup_after_pops = 0;
            let deduped = eager.find_test_data(&f, &query);
            let mut lazy = ModelChecker::new();
            lazy.dedup_after_pops = u64::MAX;
            let undeduped = lazy.find_test_data(&f, &query);
            assert_eq!(deduped.outcome, undeduped.outcome, "path {path}");
            // Pruning must never expand more states than the undeduped run.
            assert!(deduped.stats.states_created <= undeduped.stats.states_created);
        }
    }
}
