//! Transition-system model, explicit-state bounded model checker and
//! state-space optimisations — the toolchain's substitute for the SAL 2
//! model checker used in the paper.
//!
//! Section 3 of the DATE 2005 paper converts the analysed C function into a
//! SAL transition system and asks the model checker for an input assignment
//! ("test data pattern") that drives execution down a selected path; if no
//! assignment exists the path is infeasible.  The cost of that query is
//! dominated by the size of the encoded state vector and the number of
//! transitions, which is what the paper's six optimisations (Section 3.2)
//! attack.
//!
//! This crate rebuilds that machinery from scratch:
//!
//! * [`model`] — guarded transition systems over finite-domain scalar
//!   variables, with explicit state-vector bit accounting;
//! * [`encode`] — translation of a checked [`tmg_minic::Function`] into a
//!   [`model::Model`] (one transition per C statement, or fused transitions
//!   when statement concatenation is enabled);
//! * [`opt`] — the six optimisations of Section 3.2 (reverse CSE,
//!   live-variable analysis, statement concatenation, variable range
//!   analysis, variable initialisation, dead variable & code elimination);
//! * [`checker`] — an explicit-state reachability checker that lazily splits
//!   on unknown variable reads, returns witness input vectors (test data) or
//!   an infeasibility verdict, and reports the cost statistics reproduced in
//!   Table 2;
//! * [`multiquery`] — a multi-query reachability engine that explores one
//!   function's state space once and answers a whole batch of path queries
//!   from the shared, decision-signature-annotated graph
//!   ([`ModelChecker::check_many`]), with results bit-identical to the
//!   per-query engines.  Since PR 5 the batch path runs a two-stage
//!   *slice→shard* pipeline: the model is first reduced to the
//!   cone of influence of the queried decisions
//!   ([`opt::slice_for_queries`], fed by `tmg_cfg`'s def/use dependence
//!   analysis; witnesses are completed against the full model), then
//!   explored by a deterministic work-sharing parallel search whose
//!   verdicts, witnesses and step counts are reproducible for every thread
//!   count — see `crates/tsys/README.md` for the architecture and the
//!   determinism contract;
//! * [`metrics`] — process-wide observability counters (slicing reductions,
//!   shard activity, visited-table contention) embedded in the service
//!   `stats` snapshot.
//!
//! # Example: generate test data for a path
//!
//! ```
//! use tmg_minic::parse_function;
//! use tmg_cfg::build_cfg;
//! use tmg_tsys::{ModelChecker, PathQuery, Optimisations};
//!
//! let f = parse_function(
//!     "void f(int a __range(0, 5)) { if (a == 3) { hit(); } else { miss(); } }",
//! )?;
//! let lowered = build_cfg(&f);
//! let paths = tmg_cfg::enumerate_region_paths(&lowered.cfg, lowered.regions.root(), 16).expect("paths");
//! let checker = ModelChecker::with_optimisations(Optimisations::all());
//! let result = checker.find_test_data(&f, &PathQuery::new(paths[0].decisions.clone()));
//! assert!(result.outcome.witness().is_some());
//! # Ok::<(), tmg_minic::Error>(())
//! ```

pub mod cancel;
pub mod checker;
pub mod encode;
pub mod metrics;
pub mod model;
pub mod multiquery;
pub mod opt;
pub mod prepared;

pub use cancel::{catch_cancel, CancelToken, Cancelled};
pub use checker::{
    CheckOutcome, CheckResult, CheckStats, ModelChecker, PathQuery, SearchEngine, SharedCheckModel,
};
pub use encode::{encode_function, EncodeOptions};
pub use metrics::CheckerMetrics;
pub use model::{LocId, Model, StateVar, Transition, VarRole};
pub use multiquery::MultiQueryEngine;
pub use opt::{apply_optimisations, slice_for_queries, OptReport, Optimisations, SliceReport};
pub use prepared::{OwnedPreparedModel, PreparedModel};
