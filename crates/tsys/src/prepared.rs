//! A model pre-processed for checking.
//!
//! Preparation *pre-resolves* every guard and effect expression: variable
//! names become state-vector indices and the whole expression forest is
//! flattened into one contiguous node pool, so the search neither hashes a
//! string nor chases `Box` pointers.  Preparing costs a handful of `Vec`
//! growths rather than one allocation per expression node, which is why
//! [`check_model`](crate::ModelChecker::check_model) can afford to prepare
//! per query; callers that re-query one encoding repeatedly (ablations,
//! sweeps) can build a [`PreparedModel`] once and go through
//! [`check_prepared`](crate::ModelChecker::check_prepared) to skip even
//! that.

use crate::model::Model;
use rustc_hash::FxHashMap;
use tmg_minic::ast::{BinOp, Expr, StmtId, UnOp};
use tmg_minic::interp::BranchChoice;

/// Index of a node in the [`ExprPool`].
pub(crate) type NodeId = u32;

/// One flattened expression node.
#[derive(Debug, Clone, Copy)]
pub(crate) enum INode {
    /// Integer literal.
    Int(i64),
    /// Read of the variable at this state-vector index.
    Var(u32),
    /// Read of a name that is not a state variable (evaluates to an error,
    /// mirroring the interpreter's unknown-variable fault).
    UnknownVar,
    /// Unary operation.
    Unary { op: UnOp, operand: NodeId },
    /// Binary operation.
    Binary { op: BinOp, lhs: NodeId, rhs: NodeId },
}

/// Contiguous pool holding every pre-resolved expression of a model.
#[derive(Debug, Clone, Default)]
pub(crate) struct ExprPool {
    pub(crate) nodes: Vec<INode>,
}

impl ExprPool {
    fn add(&mut self, expr: &Expr, var_index: &FxHashMap<&str, usize>) -> NodeId {
        let node = match expr {
            Expr::Int(v) => INode::Int(*v),
            Expr::Var(name) => match var_index.get(name.as_str()) {
                Some(&idx) => INode::Var(idx as u32),
                None => INode::UnknownVar,
            },
            Expr::Unary { op, operand } => {
                let operand = self.add(operand, var_index);
                INode::Unary { op: *op, operand }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lhs = self.add(lhs, var_index);
                let rhs = self.add(rhs, var_index);
                INode::Binary { op: *op, lhs, rhs }
            }
        };
        self.nodes.push(node);
        self.nodes.len() as NodeId - 1
    }

    pub(crate) fn node(&self, id: NodeId) -> INode {
        self.nodes[id as usize]
    }
}

/// A guard specialised for the overwhelmingly common shapes the encoder
/// emits — `var ⋈ const`, a bare boolean variable, and their negations — so
/// the search's enabled-set loop can decide them with one packed-state read
/// instead of a pool walk.  Anything else falls back to the generic
/// pool-evaluated [`NodeId`] path with identical semantics (comparisons
/// cannot fault, so the fast path never has to model `Eval::Error`).
#[derive(Debug, Clone, Copy)]
pub(crate) enum FastGuard {
    /// No guard: always enabled.
    Always,
    /// `var ⋈ rhs` (or its negation): `negate ^ (vals[var] ⋈ rhs)`.
    Cmp {
        var: u32,
        op: BinOp,
        rhs: i64,
        negate: bool,
    },
    /// Anything else: evaluate the pre-resolved pool expression.
    Node(NodeId),
}

impl FastGuard {
    /// Classifies `expr` (already added to the pool as `node`).
    fn classify(expr: &Expr, node: NodeId, var_index: &FxHashMap<&str, usize>) -> FastGuard {
        fn atom(expr: &Expr, var_index: &FxHashMap<&str, usize>) -> Option<(u32, BinOp, i64)> {
            match expr {
                // Bare boolean read: truthy ⇔ `var != 0`.
                Expr::Var(name) => var_index
                    .get(name.as_str())
                    .map(|&v| (v as u32, BinOp::Ne, 0)),
                Expr::Binary { op, lhs, rhs } if op.is_comparison() => match (&**lhs, &**rhs) {
                    (Expr::Var(name), Expr::Int(c)) => {
                        var_index.get(name.as_str()).map(|&v| (v as u32, *op, *c))
                    }
                    _ => None,
                },
                _ => None,
            }
        }
        let (inner, negate) = match expr {
            Expr::Unary {
                op: UnOp::Not,
                operand,
            } => (&**operand, true),
            other => (other, false),
        };
        match atom(inner, var_index) {
            Some((var, op, rhs)) => FastGuard::Cmp {
                var,
                op,
                rhs,
                negate,
            },
            None => FastGuard::Node(node),
        }
    }
}

/// A transition with its guard and effects pre-resolved.
#[derive(Debug, Clone)]
pub(crate) struct PreparedTransition {
    /// Index of the source [`Transition`] in the model.
    pub(crate) index: u32,
    /// Pre-resolved guard, specialised for the common single-comparison
    /// shapes (see [`FastGuard`]; `Always` when the transition has no
    /// guard, `Node` for anything the fast path cannot decide).
    pub(crate) fast_guard: FastGuard,
    /// Pre-resolved simultaneous assignments `(target index, expression)`.
    /// Targets that are not state variables get `u32::MAX`.
    pub(crate) effect: Vec<(u32, NodeId)>,
    /// Destination location index.
    pub(crate) to: u32,
    /// Branch decision the transition encodes, copied out of the source
    /// transition so the search loops never chase back into the model.
    pub(crate) decision: Option<(StmtId, BranchChoice)>,
}

/// The owned, model-independent half of a prepared model: the per-location
/// outgoing-transition index plus the flattened expression pool.  Holding it
/// separately from the [`Model`] borrow lets [`OwnedPreparedModel`] own both
/// halves and be cached across calls (and threads) by the artifact store.
#[derive(Debug, Clone)]
pub(crate) struct PreparedProgram {
    pub(crate) outgoing: Vec<Vec<PreparedTransition>>,
    pub(crate) pool: ExprPool,
}

impl PreparedProgram {
    pub(crate) fn new(model: &Model) -> PreparedProgram {
        let var_index: FxHashMap<&str, usize> = model
            .vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.name.as_str(), i))
            .collect();
        let mut pool = ExprPool::default();
        let mut outgoing: Vec<Vec<PreparedTransition>> =
            (0..model.locations as usize).map(|_| Vec::new()).collect();
        for (index, t) in model.transitions.iter().enumerate() {
            let fast_guard = match &t.guard {
                Some(g) => {
                    let node = pool.add(g, &var_index);
                    FastGuard::classify(g, node, &var_index)
                }
                None => FastGuard::Always,
            };
            outgoing[t.from.index()].push(PreparedTransition {
                index: index as u32,
                fast_guard,
                effect: t
                    .effect
                    .iter()
                    .map(|(target, e)| {
                        let idx = var_index
                            .get(target.as_str())
                            .map(|&i| i as u32)
                            .unwrap_or(u32::MAX);
                        (idx, pool.add(e, &var_index))
                    })
                    .collect(),
                to: t.to.index() as u32,
                decision: t.decision,
            });
        }
        PreparedProgram { outgoing, pool }
    }
}

/// A [`Model`] plus everything the explicit-state search wants hoisted out of
/// the per-query loop: the per-location outgoing-transition index and the
/// flattened, index-resolved guard/effect expressions.
#[derive(Debug, Clone)]
pub struct PreparedModel<'m> {
    /// The underlying model.
    pub model: &'m Model,
    pub(crate) program: std::borrow::Cow<'m, PreparedProgram>,
}

impl<'m> PreparedModel<'m> {
    /// Prepares `model` for repeated checking.
    pub fn new(model: &'m Model) -> PreparedModel<'m> {
        PreparedModel {
            model,
            program: std::borrow::Cow::Owned(PreparedProgram::new(model)),
        }
    }
}

/// A fully owned prepared model: the encoded [`Model`] together with its
/// [`PreparedProgram`], with no outstanding borrows.  This is the cacheable
/// form the staged pipeline stores once per function and reuses across path
/// bounds, repeated analyses and [`check_many`](crate::ModelChecker::check_many)
/// batches.
#[derive(Debug, Clone)]
pub struct OwnedPreparedModel {
    model: Model,
    program: PreparedProgram,
}

impl OwnedPreparedModel {
    /// Prepares `model` and takes ownership of both halves.
    pub fn new(model: Model) -> OwnedPreparedModel {
        let program = PreparedProgram::new(&model);
        OwnedPreparedModel { model, program }
    }

    /// The underlying encoded model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// A borrowing view usable wherever a [`PreparedModel`] is expected,
    /// without re-preparing or cloning the program.
    pub fn view(&self) -> PreparedModel<'_> {
        PreparedModel {
            model: &self.model,
            program: std::borrow::Cow::Borrowed(&self.program),
        }
    }
}
