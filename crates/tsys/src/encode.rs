//! Translation of a mini-C function into a guarded transition system —
//! the counterpart of the paper's C-to-SAL converter.
//!
//! The unoptimised encoding is deliberately naive, mirroring the paper's
//! "direct conversion without any semantic knowledge":
//!
//! * every variable occupies its full storage width (booleans occupy a whole
//!   byte, `int`s sixteen bits);
//! * every C statement becomes its own transition;
//! * locals without an initialiser are *free* in the initial state, so the
//!   checker has to consider every value they might hold.
//!
//! The switches in [`EncodeOptions`] enable the two optimisations that live
//! naturally in the encoder (variable range analysis and statement
//! concatenation); the remaining optimisations are source-to-source passes in
//! [`crate::opt`].

use crate::model::{LocId, Model, StateVar, Transition, VarRole};
use std::collections::HashMap;
use tmg_minic::ast::{BinOp, Block, Expr, Function, Stmt, UnOp, VarDecl};
use tmg_minic::interp::BranchChoice;
use tmg_minic::types::Ty;

/// Options controlling the encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EncodeOptions {
    /// Variable range analysis (Section 3.2.4): narrow each variable's domain
    /// using its declared type, `__range` annotations and constant-assignment
    /// analysis instead of the full storage width.
    pub range_analysis: bool,
    /// Statement concatenation (Section 3.2.3): fuse consecutive independent
    /// assignment transitions into a single transition.
    pub concat_statements: bool,
}

impl EncodeOptions {
    /// The naive encoding with no optimisation (the paper's "unoptimized").
    pub fn naive() -> EncodeOptions {
        EncodeOptions::default()
    }

    /// Both encoder-level optimisations enabled.
    pub fn optimised() -> EncodeOptions {
        EncodeOptions {
            range_analysis: true,
            concat_statements: true,
        }
    }
}

/// Encodes `function` into a [`Model`].
///
/// # Example
///
/// ```
/// use tmg_minic::parse_function;
/// use tmg_tsys::{encode_function, EncodeOptions};
///
/// let f = parse_function("void f(bool a) { int x; x = 1; if (a) { x = 2; } }")?;
/// let naive = encode_function(&f, &EncodeOptions::naive());
/// let tight = encode_function(&f, &EncodeOptions { range_analysis: true, ..EncodeOptions::naive() });
/// assert!(tight.state_bits() < naive.state_bits());
/// # Ok::<(), tmg_minic::Error>(())
/// ```
pub fn encode_function(function: &Function, options: &EncodeOptions) -> Model {
    let mut enc = Encoder {
        function,
        options: *options,
        transitions: Vec::new(),
        next_loc: 0,
    };
    enc.encode()
}

struct Encoder<'f> {
    function: &'f Function,
    options: EncodeOptions,
    transitions: Vec<Transition>,
    next_loc: u32,
}

impl<'f> Encoder<'f> {
    fn new_loc(&mut self) -> LocId {
        let id = LocId(self.next_loc);
        self.next_loc += 1;
        id
    }

    fn encode(&mut self) -> Model {
        let initial = self.new_loc();
        let final_loc = self.new_loc();

        let mut vars = Vec::new();
        for param in &self.function.params {
            vars.push(self.encode_var(param, VarRole::Input));
        }
        for local in &self.function.locals {
            vars.push(self.encode_var(local, VarRole::Local));
        }

        // Non-constant initialisers become ordinary assignments executed
        // before the body.
        let mut cur = initial;
        for local in &self.function.locals {
            if let Some(init) = &local.init {
                if !matches!(init, Expr::Int(_)) {
                    let next = self.new_loc();
                    self.transitions.push(Transition {
                        from: cur,
                        guard: None,
                        effect: vec![(local.name.clone(), init.clone())],
                        to: next,
                        decision: None,
                    });
                    cur = next;
                }
            }
        }

        if let Some(open) = self.encode_block(&self.function.body, cur, final_loc) {
            self.transitions.push(Transition {
                from: open,
                guard: None,
                effect: Vec::new(),
                to: final_loc,
                decision: None,
            });
        }

        let mut model = Model {
            name: self.function.name.clone(),
            vars,
            locations: self.next_loc,
            initial,
            final_loc,
            transitions: std::mem::take(&mut self.transitions),
        };
        if self.options.concat_statements {
            concatenate_statements(&mut model);
        }
        compact_locations(&mut model);
        debug_assert!(model.validate().is_ok());
        model
    }

    fn encode_var(&self, decl: &VarDecl, role: VarRole) -> StateVar {
        let domain = if self.options.range_analysis {
            analysed_domain(self.function, decl)
        } else {
            storage_domain(decl.ty)
        };
        let init = match (&decl.init, role) {
            (Some(Expr::Int(v)), VarRole::Local) => Some(decl.ty.wrap(*v)),
            _ => None,
        };
        StateVar {
            name: decl.name.clone(),
            ty: decl.ty,
            domain,
            init,
            role,
        }
    }

    /// Encodes the statements of `block`, starting at location `entry`.
    /// Returns the open location where control continues, or `None` if every
    /// path reached `final_loc` via a `return`.
    fn encode_block(&mut self, block: &Block, entry: LocId, final_loc: LocId) -> Option<LocId> {
        let mut cur = entry;
        for stmt in &block.stmts {
            match stmt {
                Stmt::Assign { target, value, .. } => {
                    let next = self.new_loc();
                    self.transitions.push(Transition {
                        from: cur,
                        guard: None,
                        effect: vec![(target.clone(), value.clone())],
                        to: next,
                        decision: None,
                    });
                    cur = next;
                }
                Stmt::Call { .. } => {
                    // External calls have no effect on the state relevant to
                    // control flow; they are a skip transition (one C
                    // statement = one transition in the naive encoding).
                    let next = self.new_loc();
                    self.transitions.push(Transition {
                        from: cur,
                        guard: None,
                        effect: Vec::new(),
                        to: next,
                        decision: None,
                    });
                    cur = next;
                }
                Stmt::Return { .. } => {
                    self.transitions.push(Transition {
                        from: cur,
                        guard: None,
                        effect: Vec::new(),
                        to: final_loc,
                        decision: None,
                    });
                    return None;
                }
                Stmt::If {
                    id,
                    cond,
                    then_branch,
                    else_branch,
                    ..
                } => {
                    let join = self.new_loc();
                    let then_entry = self.new_loc();
                    self.transitions.push(Transition {
                        from: cur,
                        guard: Some(cond.clone()),
                        effect: Vec::new(),
                        to: then_entry,
                        decision: Some((*id, BranchChoice::Then)),
                    });
                    if let Some(open) = self.encode_block(then_branch, then_entry, final_loc) {
                        self.jump(open, join);
                    }
                    let else_target = match else_branch {
                        Some(else_block) => {
                            let else_entry = self.new_loc();
                            if let Some(open) = self.encode_block(else_block, else_entry, final_loc)
                            {
                                self.jump(open, join);
                            }
                            else_entry
                        }
                        None => join,
                    };
                    self.transitions.push(Transition {
                        from: cur,
                        guard: Some(negate(cond)),
                        effect: Vec::new(),
                        to: else_target,
                        decision: Some((*id, BranchChoice::Else)),
                    });
                    cur = join;
                }
                Stmt::Switch {
                    id,
                    selector,
                    cases,
                    default,
                    ..
                } => {
                    let join = self.new_loc();
                    let mut default_guard: Option<Expr> = None;
                    for case in cases {
                        let arm_entry = self.new_loc();
                        let eq = Expr::binary(BinOp::Eq, selector.clone(), Expr::int(case.value));
                        self.transitions.push(Transition {
                            from: cur,
                            guard: Some(eq),
                            effect: Vec::new(),
                            to: arm_entry,
                            decision: Some((*id, BranchChoice::Case(case.value))),
                        });
                        if let Some(open) = self.encode_block(&case.body, arm_entry, final_loc) {
                            self.jump(open, join);
                        }
                        let ne = Expr::binary(BinOp::Ne, selector.clone(), Expr::int(case.value));
                        default_guard = Some(match default_guard {
                            None => ne,
                            Some(acc) => Expr::binary(BinOp::And, acc, ne),
                        });
                    }
                    let default_target = match default {
                        Some(body) => {
                            let arm_entry = self.new_loc();
                            if let Some(open) = self.encode_block(body, arm_entry, final_loc) {
                                self.jump(open, join);
                            }
                            arm_entry
                        }
                        None => join,
                    };
                    self.transitions.push(Transition {
                        from: cur,
                        guard: default_guard,
                        effect: Vec::new(),
                        to: default_target,
                        decision: Some((*id, BranchChoice::Default)),
                    });
                    cur = join;
                }
                Stmt::While { id, cond, body, .. } => {
                    let header = self.new_loc();
                    self.jump(cur, header);
                    let body_entry = self.new_loc();
                    let after = self.new_loc();
                    self.transitions.push(Transition {
                        from: header,
                        guard: Some(cond.clone()),
                        effect: Vec::new(),
                        to: body_entry,
                        decision: Some((*id, BranchChoice::LoopIterate)),
                    });
                    self.transitions.push(Transition {
                        from: header,
                        guard: Some(negate(cond)),
                        effect: Vec::new(),
                        to: after,
                        decision: Some((*id, BranchChoice::LoopExit)),
                    });
                    if let Some(open) = self.encode_block(body, body_entry, final_loc) {
                        self.jump(open, header);
                    }
                    cur = after;
                }
            }
        }
        Some(cur)
    }

    fn jump(&mut self, from: LocId, to: LocId) {
        self.transitions.push(Transition {
            from,
            guard: None,
            effect: Vec::new(),
            to,
            decision: None,
        });
    }
}

fn negate(e: &Expr) -> Expr {
    Expr::unary(UnOp::Not, e.clone())
}

/// Full storage-width domain of a type — what the naive conversion uses
/// ("in C, boolean values are mostly encoded as integers").
fn storage_domain(ty: Ty) -> (i64, i64) {
    match ty {
        Ty::Bool | Ty::U8 => (0, 255),
        Ty::I8 => (-128, 127),
        Ty::I16 => (-32768, 32767),
        Ty::U16 => (0, 65535),
        Ty::I32 => (i64::from(i32::MIN), i64::from(i32::MAX)),
    }
}

/// Range analysis (Section 3.2.4): declared type, `__range` annotations from
/// the code generator, boolean narrowing, and constant-assignment analysis.
fn analysed_domain(function: &Function, decl: &VarDecl) -> (i64, i64) {
    if let Some(r) = decl.range {
        return r;
    }
    if decl.ty == Ty::Bool {
        return (0, 1);
    }
    // Constant-assignment analysis: if the variable is initialised with a
    // constant and every assignment to it is a constant, its domain is the
    // span of those constants.
    if let Some(Expr::Int(init)) = decl.init {
        let mut lo = init;
        let mut hi = init;
        let mut all_const = true;
        function.for_each_stmt(&mut |s| {
            if let Stmt::Assign { target, value, .. } = s {
                if target == &decl.name {
                    match value {
                        Expr::Int(v) => {
                            lo = lo.min(*v);
                            hi = hi.max(*v);
                        }
                        _ => all_const = false,
                    }
                }
            }
        });
        if all_const {
            return (
                decl.ty.wrap(lo).min(decl.ty.wrap(hi)),
                decl.ty.wrap(hi).max(decl.ty.wrap(lo)),
            );
        }
    }
    decl.ty.value_range()
}

/// Statement concatenation (Section 3.2.3): repeatedly fuse `A --e1--> B
/// --e2--> C` into `A --e1∪e2--> C` when both transitions are plain
/// assignments, `B` has no other uses, and the statements are independent
/// (the first writes nothing the second reads or writes).
fn concatenate_statements(model: &mut Model) {
    loop {
        let mut fused = false;
        'outer: for i in 0..model.transitions.len() {
            let t1 = &model.transitions[i];
            if t1.guard.is_some() || t1.decision.is_some() || t1.to == model.final_loc {
                continue;
            }
            let mid = t1.to;
            if mid == model.initial {
                continue;
            }
            let incoming = model.transitions.iter().filter(|t| t.to == mid).count();
            let outgoing: Vec<usize> = model
                .transitions
                .iter()
                .enumerate()
                .filter(|(_, t)| t.from == mid)
                .map(|(j, _)| j)
                .collect();
            if incoming != 1 || outgoing.len() != 1 {
                continue;
            }
            let j = outgoing[0];
            let t2 = &model.transitions[j];
            if t2.guard.is_some() || t2.decision.is_some() {
                continue;
            }
            // Independence: writes of t1 must not feed reads or writes of t2.
            let w1: Vec<String> = t1.written_vars().iter().map(|s| s.to_string()).collect();
            for w in &w1 {
                if t2.read_vars().contains(&w.as_str()) || t2.written_vars().contains(&w.as_str()) {
                    continue 'outer;
                }
            }
            // Fuse.
            let mut effect = model.transitions[i].effect.clone();
            effect.extend(model.transitions[j].effect.clone());
            let to = model.transitions[j].to;
            model.transitions[i].effect = effect;
            model.transitions[i].to = to;
            model.transitions.remove(j);
            fused = true;
            break;
        }
        if !fused {
            return;
        }
    }
}

/// Renumbers locations densely after passes removed some, keeping the
/// program-counter bit count honest.
fn compact_locations(model: &mut Model) {
    let mut map: HashMap<LocId, LocId> = HashMap::new();
    let mut fresh = 0u32;
    let assign = |loc: LocId, map: &mut HashMap<LocId, LocId>, fresh: &mut u32| -> LocId {
        *map.entry(loc).or_insert_with(|| {
            let id = LocId(*fresh);
            *fresh += 1;
            id
        })
    };
    let initial = assign(model.initial, &mut map, &mut fresh);
    let final_loc = assign(model.final_loc, &mut map, &mut fresh);
    for t in &mut model.transitions {
        t.from = assign(t.from, &mut map, &mut fresh);
        t.to = assign(t.to, &mut map, &mut fresh);
    }
    model.initial = initial;
    model.final_loc = final_loc;
    model.locations = fresh;
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_minic::parse_function;

    fn encode(src: &str, options: &EncodeOptions) -> Model {
        encode_function(&parse_function(src).expect("parse"), options)
    }

    #[test]
    fn naive_encoding_uses_storage_widths() {
        let m = encode("void f(bool a, char b, int c) { }", &EncodeOptions::naive());
        assert_eq!(m.var("a").map(StateVar::bits), Some(8));
        assert_eq!(m.var("b").map(StateVar::bits), Some(8));
        assert_eq!(m.var("c").map(StateVar::bits), Some(16));
    }

    #[test]
    fn range_analysis_narrows_domains() {
        let src = "void f(bool a, char s __range(0, 8)) { char st = 0; if (a) { st = 3; } else { st = 1; } }";
        let naive = encode(src, &EncodeOptions::naive());
        let tight = encode(
            src,
            &EncodeOptions {
                range_analysis: true,
                concat_statements: false,
            },
        );
        assert_eq!(tight.var("a").map(StateVar::bits), Some(1));
        assert_eq!(tight.var("s").map(StateVar::bits), Some(4));
        // Constant-assignment analysis narrows st to 0..=3.
        assert_eq!(tight.var("st").map(StateVar::bits), Some(2));
        assert!(tight.state_bits() < naive.state_bits());
    }

    #[test]
    fn one_transition_per_statement_in_naive_mode() {
        let m = encode(
            "void f(int a) { a = 1; a = 2; a = 3; }",
            &EncodeOptions::naive(),
        );
        // 3 assignments + the fall-off-the-end transition.
        assert_eq!(m.transitions.len(), 4);
    }

    #[test]
    fn statement_concatenation_fuses_independent_assignments() {
        let src = "void f(int a, int b, int c) { a = 1; b = 2; c = 3; }";
        let naive = encode(src, &EncodeOptions::naive());
        let fused = encode(
            src,
            &EncodeOptions {
                range_analysis: false,
                concat_statements: true,
            },
        );
        assert!(fused.transitions.len() < naive.transitions.len());
        // All three assignments are independent, so they can fuse into one.
        let max_effect = fused
            .transitions
            .iter()
            .map(|t| t.effect.len())
            .max()
            .unwrap_or(0);
        assert_eq!(max_effect, 3);
    }

    #[test]
    fn dependent_assignments_do_not_fuse() {
        let src = "void f(int a, int b) { a = 1; b = a + 1; }";
        let fused = encode(
            src,
            &EncodeOptions {
                range_analysis: false,
                concat_statements: true,
            },
        );
        // `b = a + 1` reads what the first statement writes: must stay split.
        assert!(fused.transitions.iter().all(|t| t.effect.len() <= 1));
    }

    #[test]
    fn branches_carry_decisions() {
        let m = encode(
            "void f(int a) { if (a > 0) { g(); } else { h(); } }",
            &EncodeOptions::naive(),
        );
        let decisions: Vec<_> = m.transitions.iter().filter_map(|t| t.decision).collect();
        assert!(decisions.iter().any(|(_, c)| *c == BranchChoice::Then));
        assert!(decisions.iter().any(|(_, c)| *c == BranchChoice::Else));
    }

    #[test]
    fn switch_default_guard_excludes_all_cases() {
        let m = encode(
            "void f(int s) { switch (s) { case 1: a(); break; case 2: b(); break; } }",
            &EncodeOptions::naive(),
        );
        let default_t = m
            .transitions
            .iter()
            .find(|t| matches!(t.decision, Some((_, BranchChoice::Default))))
            .expect("default transition");
        let guard = default_t.guard.as_ref().expect("guard");
        assert_eq!(guard.referenced_vars().len(), 2);
    }

    #[test]
    fn uninitialised_locals_are_free_and_initialised_ones_are_not() {
        let m = encode(
            "void f(int a) { int u; int v = 4; u = 1; }",
            &EncodeOptions::naive(),
        );
        assert!(m.var("u").expect("u").is_free());
        assert_eq!(m.var("v").expect("v").init, Some(4));
        // The input is always free.
        assert!(m.var("a").expect("a").is_free());
    }

    #[test]
    fn loops_produce_iterate_and_exit_decisions() {
        let m = encode(
            "void f(int n) { int i; i = 0; while (i < n) __bound(4) { i = i + 1; } }",
            &EncodeOptions::naive(),
        );
        let decisions: Vec<_> = m.transitions.iter().filter_map(|t| t.decision).collect();
        assert!(decisions
            .iter()
            .any(|(_, c)| *c == BranchChoice::LoopIterate));
        assert!(decisions.iter().any(|(_, c)| *c == BranchChoice::LoopExit));
        m.validate().expect("valid");
    }

    #[test]
    fn locations_are_compact() {
        let m = encode(
            "void f(int a) { if (a) { a = 1; } a = 2; }",
            &EncodeOptions::optimised(),
        );
        for t in &m.transitions {
            assert!(t.from.0 < m.locations && t.to.0 < m.locations);
        }
    }
}
