//! Cooperative cancellation for long-running checker searches.
//!
//! A [`CancelToken`] carries an optional wall-clock deadline and a manual
//! cancel flag.  The sharded explorer ([`crate::multiquery`]) polls it at
//! shard-claim boundaries — the natural quiescent points of the parallel
//! search — so a cancelled exploration tears down deterministically: the
//! remaining shards are claimed and immediately marked skipped, the worker
//! scope joins, and the engine *unwinds* with a [`Cancelled`] payload
//! instead of returning partial resolutions.  Nothing computed under a
//! fired token is ever observable (and therefore never cacheable) by the
//! staged pipeline: the unwind crosses the infallible stage traits without
//! touching their insert paths.
//!
//! Callers that need a typed error instead of an unwind wrap the work in
//! [`catch_cancel`], which converts the `Cancelled` payload into
//! `Err(Cancelled)` and re-raises every other panic untouched.
//!
//! The token is deliberately **excluded from the checker's `Debug`
//! rendering**: the pipeline's content-addressed artifact keys hash the
//! Debug output of the checker configuration, and a per-request deadline
//! must not fragment the cache or perturb bit-identity.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Unwind payload raised by [`CancelToken::checkpoint`]; also the typed
/// error returned by [`catch_cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "search cancelled (deadline expired or caller cancelled)")
    }
}

impl std::error::Error for Cancelled {}

struct CancelState {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cheaply clonable cooperative cancellation handle.
///
/// The default token ([`CancelToken::none`]) is inert: it never fires,
/// costs one `Option` check per poll, and is what every checker carries
/// unless a deadline-aware caller installs a live one.
#[derive(Clone, Default)]
pub struct CancelToken {
    state: Option<Arc<CancelState>>,
}

impl CancelToken {
    /// The inert token: never cancelled.
    pub fn none() -> CancelToken {
        CancelToken::default()
    }

    /// A live token with no deadline; fires only via [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken {
            state: Some(Arc::new(CancelState {
                flag: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A live token that fires once the wall clock passes `deadline` (or
    /// earlier via [`CancelToken::cancel`]).
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            state: Some(Arc::new(CancelState {
                flag: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// Fires the token manually.  Inert tokens ignore the call.
    pub fn cancel(&self) {
        if let Some(state) = &self.state {
            state.flag.store(true, Ordering::Release);
        }
    }

    /// Whether the token has fired (manual cancel or expired deadline).
    pub fn is_cancelled(&self) -> bool {
        match &self.state {
            None => false,
            Some(state) => {
                state.flag.load(Ordering::Acquire)
                    || state.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// Polls the token and unwinds with [`Cancelled`] if it has fired.
    ///
    /// The unwind bypasses the panic hook (no spurious backtrace on an
    /// ordinary deadline) and is meant to be caught by [`catch_cancel`] at
    /// the pipeline boundary.
    pub fn checkpoint(&self) {
        if self.is_cancelled() {
            resume_unwind(Box::new(Cancelled));
        }
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Constant rendering on purpose: see the module docs — the token
        // must never leak into Debug-derived artifact keys.
        f.write_str("CancelToken")
    }
}

/// Runs `f`, converting a [`Cancelled`] unwind into `Err(Cancelled)`.
/// Any other panic is re-raised unchanged.
///
/// # Errors
///
/// Returns [`Cancelled`] when `f` (or a thread it joined) unwound via
/// [`CancelToken::checkpoint`].
pub fn catch_cancel<R>(f: impl FnOnce() -> R) -> Result<R, Cancelled> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(value) => Ok(value),
        Err(payload) => match payload.downcast::<Cancelled>() {
            Ok(_) => Err(Cancelled),
            Err(other) => resume_unwind(other),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn inert_token_never_fires() {
        let t = CancelToken::none();
        t.cancel();
        assert!(!t.is_cancelled());
        t.checkpoint(); // must not unwind
    }

    #[test]
    fn manual_cancel_fires_for_every_clone() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn expired_deadline_fires() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!future.is_cancelled());
    }

    #[test]
    fn catch_cancel_converts_the_unwind_into_a_typed_error() {
        let t = CancelToken::new();
        t.cancel();
        let result = catch_cancel(|| {
            t.checkpoint();
            42
        });
        assert_eq!(result, Err(Cancelled));
        assert_eq!(catch_cancel(|| 42), Ok(42));
    }

    #[test]
    fn debug_rendering_is_constant() {
        // Artifact keys hash the checker's Debug output; the token must
        // render identically whether inert, live, cancelled or deadlined.
        let fired = CancelToken::new();
        fired.cancel();
        for t in [
            CancelToken::none(),
            CancelToken::new(),
            fired,
            CancelToken::with_deadline(Instant::now()),
        ] {
            assert_eq!(format!("{t:?}"), "CancelToken");
        }
    }
}
