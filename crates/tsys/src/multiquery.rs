//! Multi-query reachability: explore the state space once, answer every
//! coverage query from the shared annotated graph — in parallel.
//!
//! The test-generation phase asks the model checker dozens of near-identical
//! questions about *one* function — one [`PathQuery`] per residual coverage
//! goal.  Asking them one at a time repeats the same depth-first exploration
//! of the same transition system over and over; the only thing that differs
//! between queries is the path monitor riding along.  The
//! [`MultiQueryEngine`] runs the exploration once and lets every monitor ride
//! the same traversal.
//!
//! # Decision signatures
//!
//! Each explored state carries a **decision-signature id**: an interned
//! summary of the branch decisions taken en route.  The signature is *not*
//! the literal decision sequence — that would distinguish every path and
//! defeat revisit deduplication — but the product of all per-query monitor
//! states it induces: for a batch of `N` queries, a signature is the vector
//! `m₁ … m_N` where `m_q` is how many of query `q`'s decisions have been
//! matched so far, or `DEAD` once the run has taken a wrong choice at a
//! branch query `q` expected next.  Two decision histories with the same
//! vector are indistinguishable to every query, now and forever, so the
//! vector is the exact quotient the queries induce on histories and the
//! signature lattice stays small.  A per-query slice-style relevance filter
//! keeps it smaller still: decisions at statements outside
//! [`PathQuery::stmts`] of every query in the batch never extend a signature
//! (they cannot advance or kill any monitor), so straight-line code and
//! unqueried branches leave the signature — and thus the dedup key —
//! untouched.
//!
//! # Seed, then shards
//!
//! The traversal is the same packed-arena DFS as the single-query engine
//! (same split order, same depth budget).  Small explorations run it
//! sequentially to the end, exactly as before.  A large exploration runs a
//! sequential **seed phase** up to a fixed op budget ([`SHARD_SEED_OPS`] —
//! thread-count-independent, so the cut is deterministic), then snapshots
//! the DFS frontier into an ordered list of **shards**: each arena entry
//! becomes a work item, and a pending lazy domain split is cut into
//! ascending value ranges.  Shard order is exactly the sequential pop order,
//! so running the shards one after another *is* the sequential exploration —
//! and running them on worker threads explores the same states with the
//! same per-shard sub-DFS order, just wall-clock-parallel.
//!
//! **Deterministic reduction.**  Workers claim shards in index order from an
//! atomic counter.  Per query, the winning completion is the one from the
//! lexicographically smallest shard (and, inside a shard, the first pop of
//! its sub-DFS) — which by the order argument is precisely the completion
//! the sequential search reports.  Cross-shard knowledge only ever flows
//! from smaller to larger shard indices (a completion *hint* lets later
//! shards prune subtrees that are dead for every still-unsettled query, and
//! a shard is skipped outright once every query is settled by *finished*
//! earlier shards), so verdicts, witnesses and step counts are bit-identical
//! for every thread count, including one.  Only the cost statistics may vary
//! with timing, because hint-driven pruning saves nondeterministic amounts
//! of speculative work.
//!
//! # Per-query budget accounting
//!
//! The single-query engine charges each search two kinds of ops — states
//! created and transitions fired — against
//! [`ModelChecker::max_transitions`], and reports
//! [`CheckOutcome::Unknown`](crate::CheckOutcome::Unknown) when the budget
//! trips.  The shared traversal reproduces those counters *per query*
//! without per-query work: every op is charged to the signature it occurs
//! under (pushes and splits to the state's signature, fires to the
//! post-decision signature — a transition whose decision kills query `q` is
//! exactly the transition the single-query search prunes before counting),
//! and query `q`'s counter is the sum over signatures in which `q` is not
//! dead.  Because shards partition the sequential traversal, the counter at
//! `q`'s winning completion is the seed's contribution plus every earlier
//! shard's plus the winning shard's count at the pop — the exact value the
//! sequential search would have seen.  A query whose counter reaches the
//! budget before its first completion is a **certified Unknown**, a
//! completion under budget is Feasible, a drained frontier under budget is
//! Infeasible; whatever the shared run cannot settle within its own cap
//! ([`SHARED_BUDGET_FACTOR`] per-query budgets) falls back to per-query
//! search.
//!
//! The traversal runs without revisit dedup in the seed and engages the
//! striped [`ShardedVisited`] table only when a single shard's sub-DFS grows
//! past [`SHARD_DEDUP_AFTER_POPS`] pops: dedup skips work the single-query
//! engines would count, which would silently undercount the per-query budget
//! attribution, so it stays a blow-up safety valve (with the same caveat the
//! arena engine's adaptive dedup has always documented) rather than a
//! routine pruning step.  Skips consult only entries the same shard wrote,
//! which keeps resolutions deterministic; the striping exists to bound the
//! table's total memory across shards and to expose contention counters.

use crate::checker::{
    eval_guard, eval_packed, witness_packed, CheckOutcome, CheckResult, CheckStats, Eval,
    FrontierEntry, ModelChecker, PathQuery, StateArena,
};
use crate::metrics;
use crate::prepared::{PreparedModel, PreparedTransition};
use rustc_hash::FxHashMap;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use tmg_minic::ast::StmtId;
use tmg_minic::value::InputVector;

/// Monitor value marking a query that can no longer be completed on this
/// decision history (a wrong choice was taken at an expected branch).
const DEAD: u32 = u32::MAX;

/// Interned id of a decision signature (an index into [`SigLattice::vecs`]).
type SigId = u32;

/// The interned signature lattice of one exploration run, including the
/// per-signature op counters that reconstruct every query's private budget.
struct SigLattice {
    /// Monitor vector of each signature (`decisions matched` per query, or
    /// [`DEAD`]).
    vecs: Vec<Box<[u32]>>,
    /// Vector → id interning table.
    intern: FxHashMap<Box<[u32]>, SigId>,
    /// Queries each signature completes (`m_q == len(q)`).
    completes: Vec<Vec<u32>>,
    /// Whether a signature still completes a query that has no recorded
    /// resolution (cleared on first pop so later pops skip the scan).
    pending: Vec<bool>,
    /// Budget ops (states created + transitions fired) charged under each
    /// signature *within this run*.
    ops: Vec<u64>,
    /// Liveness cache: whether the signature still matters to any unsettled
    /// query (some unsettled query is neither dead nor settled under it).
    live: Vec<bool>,
    /// Epoch at which each `live` entry was computed.
    live_epoch: Vec<u64>,
    /// Memoised signature step per `(signature, relevant transition)`, as a
    /// flat `signatures × relevant-transitions` array (sentinel
    /// [`SigId::MAX`]): the hot loop consults it once per fired relevant
    /// transition, so it must be an index, not a hash lookup.  Rows cover
    /// only the transitions the batch's queries mention — irrelevant
    /// transitions never step a signature, and a row per *model* transition
    /// would waste memory proportional to function size.
    step_memo: Vec<SigId>,
    /// Relevant transitions per signature row of `step_memo`.
    relevant_n: usize,
}

impl SigLattice {
    fn new(queries: &[PathQuery], relevant_n: usize) -> SigLattice {
        let mut lattice = SigLattice {
            vecs: Vec::new(),
            intern: FxHashMap::default(),
            completes: Vec::new(),
            pending: Vec::new(),
            ops: Vec::new(),
            live: Vec::new(),
            live_epoch: Vec::new(),
            step_memo: Vec::new(),
            relevant_n,
        };
        // Root signature: nothing matched yet.  Queries of length zero (the
        // `any_execution` probe) are complete right here.
        lattice.intern_vec(vec![0u32; queries.len()].into_boxed_slice(), queries);
        lattice
    }

    /// A shard's private copy of this lattice: same interned signatures and
    /// step memo (so shards reuse the seed's work), fresh op counters and a
    /// `pending` mask recomputed against the queries still `alive`.
    fn fork(&self, alive: &[bool]) -> SigLattice {
        SigLattice {
            vecs: self.vecs.clone(),
            intern: self.intern.clone(),
            completes: self.completes.clone(),
            pending: self
                .completes
                .iter()
                .map(|c| c.iter().any(|&q| alive[q as usize]))
                .collect(),
            ops: vec![0; self.vecs.len()],
            live: vec![true; self.vecs.len()],
            live_epoch: vec![0; self.vecs.len()],
            step_memo: self.step_memo.clone(),
            relevant_n: self.relevant_n,
        }
    }

    /// Resets a worker-local lattice for its next shard: zeroed op counters,
    /// recomputed `pending`, cleared liveness cache.  Signatures interned by
    /// earlier shards (and their step memo) are deliberately *kept* — every
    /// result the engine extracts is id-agnostic (completions are recorded
    /// per query, ops are summed over monitor vectors), so a superset
    /// lattice changes nothing but the amount of re-interning saved.
    fn reset_for_shard(&mut self, alive: &[bool]) {
        self.ops.fill(0);
        for (pending, completes) in self.pending.iter_mut().zip(&self.completes) {
            *pending = completes.iter().any(|&q| alive[q as usize]);
        }
        self.live.fill(true);
        self.live_epoch.fill(0);
    }

    fn intern_vec(&mut self, vec: Box<[u32]>, queries: &[PathQuery]) -> SigId {
        if let Some(&id) = self.intern.get(&vec) {
            return id;
        }
        let id = self.vecs.len() as SigId;
        let completes: Vec<u32> = queries
            .iter()
            .enumerate()
            .filter(|(q, query)| vec[*q] as usize == query.decisions.len())
            .map(|(q, _)| q as u32)
            .collect();
        self.pending.push(!completes.is_empty());
        self.completes.push(completes);
        self.ops.push(0);
        self.live.push(true);
        self.live_epoch.push(0);
        self.step_memo.resize(
            self.vecs.len().wrapping_add(1) * self.relevant_n,
            SigId::MAX,
        );
        self.intern.insert(vec.clone(), id);
        self.vecs.push(vec);
        id
    }

    /// Whether `sig` still matters to any query alive in this run,
    /// recomputing the cached answer when resolutions have advanced since it
    /// was last checked.  A signature in which every alive query is dead
    /// heads a subtree that no single-query search would explore (each of
    /// them pruned it at or before the killing decision), so the traversal
    /// prunes it too — the op attribution of alive queries is untouched by
    /// construction.
    fn is_live(&mut self, sig: SigId, alive: &[bool], epoch: u64) -> bool {
        let i = sig as usize;
        if self.live_epoch[i] != epoch {
            self.live_epoch[i] = epoch;
            self.live[i] = self.vecs[i]
                .iter()
                .zip(alive)
                .any(|(&m, &alive)| alive && m != DEAD);
        }
        self.live[i]
    }

    /// Steps `sig` over the decision of transition `t`, interning the
    /// successor on first encounter.
    fn step(
        &mut self,
        sig: SigId,
        dense: u32,
        t: &PreparedTransition,
        queries: &[PathQuery],
    ) -> SigId {
        let key = sig as usize * self.relevant_n + dense as usize;
        let memoised = self.step_memo[key];
        if memoised != SigId::MAX {
            return memoised;
        }
        let (stmt, choice) = t.decision.expect("stepped transitions carry a decision");
        let cur = self.vecs[sig as usize].clone();
        let mut next_vec: Option<Box<[u32]>> = None;
        for (q, query) in queries.iter().enumerate() {
            let m = cur[q];
            if m == DEAD || m as usize == query.decisions.len() {
                continue;
            }
            let (expected_stmt, expected_choice) = query.decisions[m as usize];
            if expected_stmt == stmt {
                let stepped = if expected_choice == choice {
                    m + 1
                } else {
                    DEAD
                };
                next_vec.get_or_insert_with(|| cur.clone())[q] = stepped;
            }
        }
        let next = match next_vec {
            None => sig,
            Some(vec) => self.intern_vec(vec, queries),
        };
        self.step_memo[key] = next;
        next
    }

    /// Query `q`'s op counter within this run: the ops charged under every
    /// signature in which `q` is still matchable or complete.
    fn query_ops(&self, q: usize) -> u64 {
        self.ops
            .iter()
            .zip(&self.vecs)
            .filter(|(ops, vec)| **ops > 0 && vec[q] != DEAD)
            .map(|(ops, _)| *ops)
            .sum()
    }

    /// All queries' op counters in one pass over the signatures this run
    /// actually charged (shards touch a small slice of the lattice, so this
    /// is far cheaper than a per-query scan).
    fn query_ops_all(&self, out: &mut [u64]) {
        out.fill(0);
        for (ops, vec) in self.ops.iter().zip(&self.vecs) {
            if *ops == 0 {
                continue;
            }
            for (q, &m) in vec.iter().enumerate() {
                if m != DEAD {
                    out[q] += *ops;
                }
            }
        }
    }
}

/// How the shared exploration settled one query.
#[derive(Debug, Clone)]
enum Resolution {
    /// First completing pop under the per-query budget: witness inputs and
    /// witness run length.
    Feasible(InputVector, u64),
    /// The query's reconstructed op counter hit the per-query budget before
    /// a completing pop: its own search would have reported Unknown.
    Unknown,
    /// The frontier drained with the query's counter under budget and no
    /// completing pop.
    Infeasible,
}

/// Multiplier on [`ModelChecker::max_transitions`] bounding the shared
/// exploration: doing the work of up to `n` queries, it may spend up to
/// `min(n, 4)` per-query budgets before giving the rest back to per-query
/// fallback.
const SHARED_BUDGET_FACTOR: u64 = 4;

/// Ops between certification sweeps (checking every open query's
/// reconstructed counter against the budget).
const SWEEP_INTERVAL: u64 = 1 << 20;

/// Seed-phase op budget after which a large exploration snapshots its DFS
/// frontier into shards.  Fixed (never derived from the thread count) so the
/// shard set — and with it every verdict, witness and step count — is
/// deterministic across thread counts.
const SHARD_SEED_OPS: u64 = 1 << 15;

/// Target shard count for one exploration (fixed for determinism; actual
/// count depends on the frontier shape).
const SHARD_TARGET: u64 = 192;

/// Minimum frontier units (pending states + pending split values) worth
/// sharding; narrower frontiers keep exploring sequentially.
const SHARD_MIN_UNITS: u64 = 64;

/// Pops between a shard's polls of the cross-shard completion hints.
const HINT_POLL_POPS: u64 = 4096;

/// Shard-local pop count after which the sharded visited table engages
/// (blow-up safety valve; see the module docs for the attribution caveat).
const SHARD_DEDUP_AFTER_POPS: u64 = 1 << 20;

/// Stripes of the sharded visited table.
const VISITED_STRIPES: usize = 64;

/// Total entry budget of the sharded visited table across all stripes.
const VISITED_TOTAL_CAP: usize = 1 << 21;

/// One stripe of the sharded visited table: packed state key → (owning
/// shard, best depth).
type VisitedStripe = Mutex<FxHashMap<Box<[u64]>, (u32, u64)>>;

/// The striped-lock visited table shared by every shard of one exploration.
///
/// Entries are keyed by the packed `(location, signature, valuation)` state
/// and tagged with the shard that wrote them; a shard only *skips* on its
/// own entries (cross-shard skipping would make resolutions depend on race
/// timing), so the sharing exists to bound total memory and to surface
/// contention, not to prune across shards.
pub(crate) struct ShardedVisited {
    stripes: Vec<VisitedStripe>,
    insertions: AtomicU64,
    hits: AtomicU64,
    collisions: AtomicU64,
}

impl ShardedVisited {
    fn new() -> ShardedVisited {
        ShardedVisited {
            stripes: (0..VISITED_STRIPES)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            insertions: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
        }
    }

    fn stripe_of(key: &[u64]) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for w in key.iter().take(2) {
            h ^= *w;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        (h as usize) & (VISITED_STRIPES - 1)
    }

    /// Records a visit of `key` at `depth` by `shard`; returns
    /// `(skippable, inserted)` — skippable when a previous visit *by the
    /// same shard* at the same or smaller depth covers the revisit.  The
    /// caller enforces a deterministic per-shard insertion quota via
    /// `may_insert` (a shared racy cap would make one shard's skip set
    /// depend on how fast the others filled the table).
    fn check_and_insert(
        &self,
        key: &[u64],
        shard: u32,
        depth: u64,
        may_insert: bool,
    ) -> (bool, bool) {
        let stripe = &self.stripes[Self::stripe_of(key)];
        let mut guard = match stripe.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.collisions.fetch_add(1, Ordering::Relaxed);
                stripe.lock().expect("visited stripe")
            }
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        };
        match guard.get_mut(key) {
            Some((owner, best)) if *owner == shard => {
                if *best <= depth {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (true, false);
                }
                *best = depth;
                (false, false)
            }
            Some(_) => (false, false),
            None => {
                if may_insert {
                    guard.insert(key.to_vec().into_boxed_slice(), (shard, depth));
                    self.insertions.fetch_add(1, Ordering::Relaxed);
                    (false, true)
                } else {
                    (false, false)
                }
            }
        }
    }

    /// Counter snapshot `(insertions, hits, stripe collisions)`; the caller
    /// publishes exactly one phase's numbers (a discarded speculative phase
    /// must not inflate the operator-facing metrics).
    fn counters(&self) -> (u64, u64, u64) {
        (
            self.insertions.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
            self.collisions.load(Ordering::Relaxed),
        )
    }
}

/// Cross-shard knowledge, published so running shards can stop spending on
/// queries whose fate is already sealed.  Every fact here is *deterministic
/// in content* — a completion's owning shard index, or the per-query op
/// total over a finished shard prefix — even though *when* a given shard
/// learns it is timing-dependent.  Pruning on such facts is result-safe:
/// it only ever skips subtrees whose contribution could no longer change
/// any verdict, witness or step count (see the module docs), so late
/// knowledge merely costs speculative work.
struct SharedKnowledge {
    /// Per query: the smallest shard index that found a completion so far.
    /// A shard consults indices strictly below its own, so knowledge flows
    /// only from lexicographically earlier work.
    first_shard: Vec<AtomicU64>,
    /// Per query: attributed ops summed over the finished shard prefix
    /// (monotone; written only under the prefix lock, in shard order, so
    /// every published value is a prefix sum the sequential run would also
    /// compute).
    prefix_ops: Vec<AtomicU64>,
}

impl SharedKnowledge {
    fn new(queries: usize) -> SharedKnowledge {
        SharedKnowledge {
            first_shard: (0..queries).map(|_| AtomicU64::new(u64::MAX)).collect(),
            prefix_ops: (0..queries).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record_completion(&self, q: usize, shard: u64) {
        self.first_shard[q].fetch_min(shard, Ordering::Relaxed);
    }

    fn completed_below(&self, q: usize, shard: u64) -> bool {
        self.first_shard[q].load(Ordering::Relaxed) < shard
    }

    fn prefix_ops(&self, q: usize) -> u64 {
        self.prefix_ops[q].load(Ordering::Relaxed)
    }
}

/// One query's first completion within a run.
struct Completion {
    witness: InputVector,
    depth: u64,
    /// The query's attributed op counter (run-local) at the completing pop.
    ops_at_pop: u64,
}

/// Everything one traversal run (seed or shard) produced.
struct RunOutput {
    /// Per-query attributed ops within this run.
    query_ops: Vec<u64>,
    /// First completion per query within this run.
    completions: Vec<Option<Completion>>,
    states_created: u64,
    transitions_fired: u64,
    max_depth: u64,
    pops: u64,
    /// Whether this run hit its op cap with work left.
    tripped: bool,
    /// Visited-table consultations (nonzero once the dedup valve engaged).
    dedup_checks: u64,
    signatures: usize,
}

enum RunExit {
    /// The arena drained.
    Drained,
    /// Every alive query was settled within this run's view.
    AllSettled,
    /// The op cap tripped with the arena non-empty.
    Tripped,
    /// Seed only: the shard trigger fired; the arena holds the frontier.
    ShardReady,
}

/// Immutable context shared by every run of one exploration.
struct RunCtx<'a> {
    prepared: &'a PreparedModel<'a>,
    queries: &'a [PathQuery],
    /// Per model transition: its dense relevant-transition id, or
    /// `u32::MAX` when no query mentions its decision statement.
    relevant_dense: &'a [u32],
    vars_n: usize,
    words: usize,
    query_budget: u64,
    op_cap: u64,
    /// Ops already attributed to each query before this run (zeros for the
    /// seed; the seed's counters for shards).
    base_ops: &'a [u64],
    /// `(knowledge, own shard index)` — shards only.
    knowledge: Option<(&'a SharedKnowledge, u64)>,
    /// `(table, own shard tag)` — shards only.
    visited: Option<(&'a ShardedVisited, u32)>,
    /// Deterministic cap on this run's visited-table insertions (the total
    /// memory bound divided by the shard count).
    visited_quota: usize,
    /// Seed only: op count at which to stop and hand the frontier to shards
    /// (provided the frontier is wide enough).
    shard_trigger: Option<u64>,
    /// Maximum run length ([`ModelChecker::max_depth`]).
    max_depth: u64,
}

/// One traversal run: the packed-arena DFS with signature stepping, budget
/// attribution and liveness pruning.  The seed and every shard execute this
/// same loop; they differ only in their starting arena and context knobs.
fn run_exploration(
    ctx: &RunCtx<'_>,
    lattice: &mut SigLattice,
    arena: &mut StateArena,
    alive: &mut [bool],
    out: &mut RunOutput,
) -> RunExit {
    let model = ctx.prepared.model;
    let pool = &ctx.prepared.program.pool;
    let mut open = alive.iter().filter(|&&a| a).count();
    let mut epoch: u64 = 1;
    let mut next_sweep = SWEEP_INTERVAL;
    let mut next_hint_poll = HINT_POLL_POPS;
    // Throttle for the seed's frontier-width probe: scanning the arena is
    // O(stack depth), so it runs every few thousand ops, not every pop.
    let mut next_shard_check = ctx.shard_trigger.unwrap_or(u64::MAX);

    let mut cur_vals = vec![0i64; ctx.vars_n];
    let mut cur_known = vec![0u64; ctx.words];
    let mut child_vals = vec![0i64; ctx.vars_n];
    let mut child_known = vec![0u64; ctx.words];
    let mut enabled: Vec<usize> = Vec::with_capacity(8);
    let mut effect_cache: Vec<Eval> = Vec::with_capacity(8);
    let mut effect_offsets: Vec<usize> = Vec::with_capacity(8);
    let mut key_buf: Vec<u64> = Vec::with_capacity(1 + ctx.words + ctx.vars_n);
    let mut dedup_enabled = true;
    let mut dedup_checks: u64 = 0;
    let mut dedup_hits: u64 = 0;
    let mut dedup_inserted: usize = 0;

    if open == 0 {
        return RunExit::AllSettled;
    }

    'search: loop {
        let total_ops = out.transitions_fired + out.states_created;
        if total_ops >= ctx.op_cap {
            out.tripped = true;
            break 'search RunExit::Tripped;
        }
        if total_ops >= next_shard_check {
            if frontier_units(arena) >= SHARD_MIN_UNITS {
                return RunExit::ShardReady;
            }
            next_shard_check = total_ops + (SHARD_SEED_OPS >> 3);
        }
        if total_ops >= next_sweep {
            // Certification sweep: any alive query whose attributed counter
            // — base (seed), published finished-prefix total, and this run's
            // own share — has crossed its budget is spent: whatever this or
            // any later shard finds for it can only confirm Unknown, so stop
            // paying for it.  (Final verdicts recompute the exact counter
            // from the per-run outputs; the sweep only prunes.)
            next_sweep = total_ops + SWEEP_INTERVAL;
            for (q, alive_q) in alive.iter_mut().enumerate() {
                if !*alive_q {
                    continue;
                }
                let prefix = ctx.knowledge.map(|(k, _)| k.prefix_ops(q)).unwrap_or(0);
                if ctx.base_ops[q] + prefix + lattice.query_ops(q) >= ctx.query_budget {
                    *alive_q = false;
                    open -= 1;
                    epoch += 1;
                }
            }
            if open == 0 {
                break 'search RunExit::AllSettled;
            }
        }
        if let Some((knowledge, me)) = ctx.knowledge {
            if out.pops >= next_hint_poll {
                next_hint_poll = out.pops + HINT_POLL_POPS;
                for (q, alive_q) in alive.iter_mut().enumerate() {
                    if !*alive_q {
                        continue;
                    }
                    // A lexicographically earlier shard holds this query's
                    // winning completion, or the finished prefix already
                    // spent its budget: nothing this shard finds for it can
                    // matter any more.
                    let sealed = knowledge.completed_below(q, me)
                        || ctx.base_ops[q] + knowledge.prefix_ops(q) + lattice.query_ops(q)
                            >= ctx.query_budget;
                    if sealed {
                        *alive_q = false;
                        open -= 1;
                        epoch += 1;
                    }
                }
                if open == 0 {
                    break 'search RunExit::AllSettled;
                }
            }
        }

        let Some(entry) = arena.pop(&mut cur_vals, &mut cur_known) else {
            break 'search RunExit::Drained;
        };
        out.pops += 1;
        out.max_depth = out.max_depth.max(entry.depth);
        let sig = entry.monitor;
        // Membership scan: does this state's signature complete a query that
        // is still alive?  Pops happen in the exact DFS order of the
        // single-query search, so the first hit per query within the
        // seed-then-shard order *is* the single-query witness state.
        if lattice.pending[sig as usize] {
            for i in 0..lattice.completes[sig as usize].len() {
                let q = lattice.completes[sig as usize][i] as usize;
                if alive[q] && out.completions[q].is_none() {
                    out.completions[q] = Some(Completion {
                        witness: witness_packed(model, &cur_vals, &cur_known),
                        depth: entry.depth,
                        ops_at_pop: lattice.query_ops(q),
                    });
                    if let Some((knowledge, me)) = ctx.knowledge {
                        knowledge.record_completion(q, me);
                    }
                    alive[q] = false;
                    open -= 1;
                    epoch += 1;
                }
            }
            lattice.pending[sig as usize] = false;
            if open == 0 {
                // Every query this run can still influence is settled; the
                // rest of the traversal could only prove infeasibilities
                // nobody is waiting for.
                break 'search RunExit::AllSettled;
            }
        }
        if !lattice.is_live(sig, alive, epoch) {
            // Every alive query is dead here: no single-query search would
            // expand this state.
            continue;
        }
        if entry.depth >= ctx.max_depth {
            continue;
        }
        let transitions = &ctx.prepared.program.outgoing[entry.loc as usize];
        if transitions.is_empty() {
            continue;
        }

        // Blow-up safety valve: once a single run's sub-DFS is past the
        // engagement threshold, consult the sharded visited table (own-shard
        // entries only — see the struct docs).  Like the single-query
        // engine's adaptive dedup, it switches itself off when the hit rate
        // shows the state space is not reconverging — wide-domain splits
        // produce millions of unique states that would only burn memory.
        if let Some((visited, tag)) = ctx.visited {
            if dedup_enabled && out.pops > SHARD_DEDUP_AFTER_POPS {
                dedup_checks += 1;
                key_buf.clear();
                key_buf.push(u64::from(entry.loc) | (u64::from(sig) << 32));
                key_buf.extend_from_slice(&cur_known);
                key_buf.extend(cur_vals.iter().map(|v| *v as u64));
                let (skip, inserted) = visited.check_and_insert(
                    &key_buf,
                    tag,
                    entry.depth,
                    dedup_inserted < ctx.visited_quota,
                );
                if inserted {
                    dedup_inserted += 1;
                }
                if skip {
                    dedup_hits += 1;
                    continue;
                }
                if dedup_checks & 0xFFFF == 0 && dedup_hits * 10 < dedup_checks {
                    dedup_enabled = false;
                }
                out.dedup_checks = dedup_checks;
            }
        }

        // Enabled-set computation and lazy splitting, identical to the
        // single-query engine.
        let mut split_var: Option<usize> = None;
        enabled.clear();
        for (i, t) in transitions.iter().enumerate() {
            match eval_guard(pool, t, &cur_vals, &cur_known) {
                Eval::Known(v) => {
                    if v != 0 {
                        enabled.push(i);
                    }
                }
                Eval::Unknown(var) => {
                    split_var = Some(var);
                    break;
                }
                Eval::Error => {}
            }
        }
        effect_cache.clear();
        effect_offsets.clear();
        if split_var.is_none() {
            'effects: for &i in &enabled {
                effect_offsets.push(effect_cache.len());
                for &(_, e) in &transitions[i].effect {
                    let value = eval_packed(pool, e, &cur_vals, &cur_known);
                    if let Eval::Unknown(var) = value {
                        split_var = Some(var);
                        break 'effects;
                    }
                    effect_cache.push(value);
                }
            }
        }
        if let Some(var) = split_var {
            let (lo, hi) = model.vars[var].domain;
            out.states_created += model.vars[var].domain_size();
            lattice.ops[sig as usize] += model.vars[var].domain_size();
            arena.push_split(
                entry.loc,
                sig,
                entry.depth,
                &cur_vals,
                &cur_known,
                var as u32,
                lo,
                hi,
            );
            continue;
        }
        // Fire enabled transitions (in reverse so the first is explored
        // first by the DFS).  Unlike the single-query monitor there is no
        // pruning: a wrong decision only kills the affected monitors inside
        // the signature — the run stays interesting to the other queries,
        // and the fire/push ops are charged to the post-decision signature,
        // which is exactly the set of queries whose own search would have
        // paid for them.
        for pos in (0..enabled.len()).rev() {
            let t: &PreparedTransition = &transitions[enabled[pos]];
            let dense = ctx.relevant_dense[t.index as usize];
            let sig_next = if dense != u32::MAX {
                lattice.step(sig, dense, t, ctx.queries)
            } else {
                sig
            };
            if sig_next != sig && !lattice.is_live(sig_next, alive, epoch) {
                // The decision just killed the last alive query that was
                // still matchable on this run: every single-query search
                // prunes this transition (at this decision or an earlier
                // one), so the shared traversal does too, and no alive
                // query's op counter is owed anything for it.
                continue;
            }
            child_vals.copy_from_slice(&cur_vals);
            child_known.copy_from_slice(&cur_known);
            let mut failed = false;
            let cached = &effect_cache[effect_offsets[pos]..];
            for (&(target, _), value) in t.effect.iter().zip(cached) {
                match *value {
                    Eval::Known(v) => {
                        let target = target as usize;
                        if target >= ctx.vars_n {
                            failed = true;
                            break;
                        }
                        child_vals[target] = model.vars[target].ty.wrap(v);
                        child_known[target >> 6] |= 1 << (target & 63);
                    }
                    Eval::Unknown(_) | Eval::Error => {
                        failed = true;
                        break;
                    }
                }
            }
            if failed {
                continue;
            }
            out.transitions_fired += 1;
            out.states_created += 1;
            lattice.ops[sig_next as usize] += 2;
            arena.push(t.to, sig_next, entry.depth + 1, &child_vals, &child_known);
        }
    }
}

impl<'a> RunCtx<'a> {
    fn output(&self) -> RunOutput {
        RunOutput {
            query_ops: vec![0; self.queries.len()],
            completions: (0..self.queries.len()).map(|_| None).collect(),
            states_created: 0,
            transitions_fired: 0,
            max_depth: 0,
            pops: 0,
            tripped: false,
            dedup_checks: 0,
            signatures: 0,
        }
    }
}

/// Pending work still on the arena, in frontier units (a concrete entry is
/// one unit, a pending split one unit per remaining value).
fn frontier_units(arena: &StateArena) -> u64 {
    arena
        .frontier_shape()
        .map(|width| width.max(1))
        .sum::<u64>()
}

/// One shard: a contiguous run of frontier work items, in sequential pop
/// order.
struct Shard {
    items: Vec<FrontierEntry>,
}

/// Cuts the seed's frontier into ordered shards: entries in pop order, lazy
/// splits chunked into ascending value ranges, consecutive items packed
/// until each shard holds roughly `units / SHARD_TARGET` frontier units.
/// Everything here is a pure function of the frontier — never of the thread
/// count — so the shard set is deterministic.
fn build_shards(frontier: Vec<FrontierEntry>) -> Vec<Shard> {
    let units: u64 = frontier
        .iter()
        .map(|e| match e.split {
            Some((_, lo, hi)) => (hi - lo + 1).max(1) as u64,
            None => 1,
        })
        .sum();
    let per_shard = (units / SHARD_TARGET).max(1);
    let mut shards: Vec<Shard> = Vec::new();
    let mut current: Vec<FrontierEntry> = Vec::new();
    let mut current_units: u64 = 0;
    let mut flush = |current: &mut Vec<FrontierEntry>, current_units: &mut u64| {
        if !current.is_empty() {
            shards.push(Shard {
                items: std::mem::take(current),
            });
            *current_units = 0;
        }
    };
    for entry in frontier {
        match entry.split {
            None => {
                current.push(entry);
                current_units += 1;
                if current_units >= per_shard {
                    flush(&mut current, &mut current_units);
                }
            }
            Some((var, lo, hi)) => {
                let mut next = lo;
                while next <= hi {
                    let room = per_shard - current_units;
                    let take = room.min((hi - next + 1) as u64).max(1);
                    let upper = next + take as i64 - 1;
                    current.push(FrontierEntry {
                        split: Some((var, next, upper)),
                        ..entry.clone()
                    });
                    current_units += take;
                    next = upper + 1;
                    if current_units >= per_shard {
                        flush(&mut current, &mut current_units);
                    }
                }
            }
        }
    }
    flush(&mut current, &mut current_units);
    shards
}

/// Resolves the explorer's worker count: an explicit override via
/// `TMG_EXPLORE_THREADS` or `RAYON_NUM_THREADS`, else the machine's
/// available parallelism.  Thread count never changes results — only
/// wall-clock time.
fn default_explore_threads() -> usize {
    // Inside a rayon worker (testgen's residual fan-out, the service's
    // analyse_all) the cores are already owned by the outer parallelism:
    // spawning a full complement of scoped workers per task would
    // oversubscribe quadratically, so nested explorations stay sequential —
    // mirroring the vendored rayon shim's own nested-collect rule.
    if std::thread::current()
        .name()
        .is_some_and(|name| name.starts_with("rayon-shim-"))
    {
        return 1;
    }
    for var in ["TMG_EXPLORE_THREADS", "RAYON_NUM_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The annotated result of one shared exploration, ready to answer any of
/// the queries it was explored for.
#[derive(Debug)]
pub struct MultiQueryEngine {
    /// Per query: how the shared exploration settled it (`None` = give the
    /// query back to per-query search).
    resolutions: Vec<Option<Resolution>>,
    /// Whether the exploration stopped at the shared budget with work left.
    gave_up: bool,
    /// Cost of the shared exploration.
    stats: CheckStats,
    /// Number of distinct decision signatures encountered (seed lattice plus
    /// the largest shard extension).
    signatures: usize,
}

impl MultiQueryEngine {
    /// Explores `prepared`'s state space once and settles every query it can
    /// within `min(queries, 4)` multiples of `checker`'s per-query budget,
    /// fanning large explorations out across the machine's cores (see the
    /// module docs; results are identical for every thread count).
    pub fn explore(
        checker: &ModelChecker,
        prepared: &PreparedModel<'_>,
        queries: &[PathQuery],
    ) -> MultiQueryEngine {
        Self::explore_with_threads(checker, prepared, queries, default_explore_threads())
    }

    /// Like [`explore`](MultiQueryEngine::explore) with an explicit worker
    /// count (used by the determinism tests and the thread-scaling bench).
    pub fn explore_with_threads(
        checker: &ModelChecker,
        prepared: &PreparedModel<'_>,
        queries: &[PathQuery],
        threads: usize,
    ) -> MultiQueryEngine {
        checker.cancel.checkpoint();
        let start = Instant::now();
        let model = prepared.model;
        let vars_n = model.vars.len();
        let words = vars_n.div_ceil(64).max(1);

        let mut stats = CheckStats {
            state_bits: model.state_bits(),
            state_bytes: model.state_bytes(),
            model_transitions: model.transitions.len(),
            model_vars: model.vars.len(),
            ..CheckStats::default()
        };

        // Relevance filter: transitions whose decision statement no query
        // mentions can never move a monitor, so they skip signature stepping
        // entirely.
        let relevant_stmts: HashSet<StmtId> = queries
            .iter()
            .flat_map(|q| q.stmts().iter().copied())
            .collect();
        let mut relevant_dense = vec![u32::MAX; model.transitions.len()];
        let mut relevant_n: u32 = 0;
        for transitions in &prepared.program.outgoing {
            for t in transitions {
                if let Some((stmt, _)) = t.decision {
                    if relevant_stmts.contains(&stmt) {
                        relevant_dense[t.index as usize] = relevant_n;
                        relevant_n += 1;
                    }
                }
            }
        }

        let query_budget = checker.max_transitions;
        let op_cap =
            query_budget.saturating_mul(SHARED_BUDGET_FACTOR.min(queries.len().max(1) as u64));
        let zeros = vec![0u64; queries.len()];
        let threads = threads.max(1);
        let seed_ctx = RunCtx {
            prepared,
            queries,
            relevant_dense: &relevant_dense,
            vars_n,
            words,
            query_budget,
            op_cap,
            base_ops: &zeros,
            knowledge: None,
            visited: None,
            visited_quota: 0,
            // The trigger never depends on the thread count: one worker runs
            // the exact same shard set in order, which is what makes 1-vs-N
            // results bit-identical even at the shared-budget give-up
            // boundary (the determinism tests pin this).
            shard_trigger: Some(SHARD_SEED_OPS),
            max_depth: checker.max_depth,
        };

        let mut lattice = SigLattice::new(queries, relevant_n as usize);
        let mut arena = StateArena::new(vars_n, words);
        {
            let mut vals = vec![0i64; vars_n];
            let mut known = vec![0u64; words];
            for (i, var) in model.vars.iter().enumerate() {
                if let Some(init) = var.init {
                    vals[i] = init;
                    known[i >> 6] |= 1 << (i & 63);
                }
            }
            arena.push(model.initial.index() as u32, 0, 0, &vals, &known);
        }
        let mut alive = vec![true; queries.len()];
        let mut seed_out = seed_ctx.output();
        seed_out.states_created = 1;
        lattice.ops[0] += 1;

        let seed_exit = {
            let _span = tmg_obs::span("checker:seed");
            run_exploration(
                &seed_ctx,
                &mut lattice,
                &mut arena,
                &mut alive,
                &mut seed_out,
            )
        };
        lattice.query_ops_all(&mut seed_out.query_ops);
        seed_out.signatures = lattice.vecs.len();
        // The seed/shard boundary is the first cooperative cancellation
        // point after real work: a cancelled exploration unwinds here with
        // nothing published, never with partial resolutions.
        checker.cancel.checkpoint();

        let mut shard_runs: Vec<ShardSlot> = Vec::new();
        let seed_tripped = matches!(seed_exit, RunExit::Tripped);

        if matches!(seed_exit, RunExit::ShardReady) {
            let frontier = arena.drain_frontier();
            let shards = build_shards(frontier);
            let shard_base: Vec<u64> = seed_out.query_ops.clone();
            let unresolved_at_seed: Vec<bool> = alive.clone();
            let open_after_seed = alive.iter().filter(|&&a| a).count();
            // Per-shard visited-table quota: the memory bound is divided
            // deterministically instead of raced for, so a shard's own
            // dedup-skip set never depends on how fast *other* shards filled
            // the table.
            let visited_quota = VISITED_TOTAL_CAP / shards.len().max(1);

            let run_shard_phase = |workers: usize| -> (Vec<ShardSlot>, (u64, u64, u64)) {
                let knowledge = SharedKnowledge::new(queries.len());
                let visited = ShardedVisited::new();
                let slots: Vec<Mutex<ShardSlotState>> = (0..shards.len())
                    .map(|_| Mutex::new(ShardSlotState::Pending))
                    .collect();
                let next_shard = AtomicUsize::new(0);
                let all_settled = AtomicBool::new(open_after_seed == 0);
                let prefix = Mutex::new(PrefixState {
                    next: 0,
                    cumulative: shard_base.clone(),
                    settled: unresolved_at_seed.iter().map(|&a| !a).collect(),
                    open: open_after_seed,
                });

                let run_one = |index: usize, local: &mut Option<SigLattice>| {
                    if checker.cancel.is_cancelled() {
                        // A fired token settles the phase: every remaining
                        // shard is still claimed (keeping the slot-state
                        // invariant) but marked skipped, so the worker scope
                        // joins promptly and the caller unwinds after the
                        // join — no shard result computed under a cancelled
                        // token is ever reduced or published.
                        all_settled.store(true, Ordering::Release);
                    }
                    if all_settled.load(Ordering::Acquire) {
                        *slots[index].lock().expect("slot") = ShardSlotState::Skipped;
                    } else {
                        let ctx = RunCtx {
                            prepared,
                            queries,
                            relevant_dense: &relevant_dense,
                            vars_n,
                            words,
                            query_budget,
                            op_cap,
                            base_ops: &shard_base,
                            knowledge: Some((&knowledge, index as u64)),
                            visited: Some((&visited, index as u32)),
                            visited_quota,
                            shard_trigger: None,
                            max_depth: checker.max_depth,
                        };
                        // Each worker forks the seed lattice once and resets
                        // it between shards: the interned signatures and the
                        // step memo are reusable verbatim, and every result
                        // the reduction extracts is id-agnostic, so reuse
                        // only saves the per-shard deep clone.
                        let shard_lattice = match local {
                            Some(lattice) => {
                                lattice.reset_for_shard(&unresolved_at_seed);
                                lattice
                            }
                            None => local.insert(lattice.fork(&unresolved_at_seed)),
                        };
                        let mut shard_arena = StateArena::new(vars_n, words);
                        for item in shards[index].items.iter().rev() {
                            shard_arena.push_frontier(item);
                        }
                        let mut shard_alive = unresolved_at_seed.clone();
                        let mut out = ctx.output();
                        run_exploration(
                            &ctx,
                            shard_lattice,
                            &mut shard_arena,
                            &mut shard_alive,
                            &mut out,
                        );
                        shard_lattice.query_ops_all(&mut out.query_ops);
                        out.signatures = shard_lattice.vecs.len();
                        *slots[index].lock().expect("slot") = ShardSlotState::Done(out);
                    }
                    // Advance the done prefix: accumulate per-query ops over
                    // finished shards *in index order* and mark queries
                    // settled once the prefix holds a completion for them or
                    // has spent their budget.  Every published value is a
                    // prefix sum the sequential run computes too, so the
                    // knowledge running shards prune on is deterministic in
                    // content.
                    let mut prefix = prefix.lock().expect("prefix");
                    while prefix.next < slots.len() {
                        let slot = slots[prefix.next].lock().expect("slot");
                        match &*slot {
                            ShardSlotState::Pending => break,
                            ShardSlotState::Skipped => {}
                            ShardSlotState::Done(out) => {
                                if out.tripped {
                                    // Everything behind the first trip is
                                    // discarded by the reduction's cutoff;
                                    // exploring it would be pure waste.
                                    all_settled.store(true, Ordering::Release);
                                }
                                let PrefixState {
                                    cumulative,
                                    settled,
                                    open,
                                    ..
                                } = &mut *prefix;
                                for (q, settled_q) in settled.iter_mut().enumerate() {
                                    if *settled_q {
                                        continue;
                                    }
                                    if out.completions[q].is_some() {
                                        *settled_q = true;
                                        *open -= 1;
                                        continue;
                                    }
                                    cumulative[q] += out.query_ops[q];
                                    knowledge.prefix_ops[q].store(
                                        cumulative[q].saturating_sub(shard_base[q]),
                                        Ordering::Relaxed,
                                    );
                                    if cumulative[q] >= query_budget {
                                        *settled_q = true;
                                        *open -= 1;
                                    }
                                }
                            }
                        }
                        drop(slot);
                        prefix.next += 1;
                    }
                    if prefix.open == 0 {
                        all_settled.store(true, Ordering::Release);
                    }
                };

                if workers <= 1 {
                    let mut local = None;
                    for index in 0..shards.len() {
                        run_one(index, &mut local);
                    }
                } else {
                    std::thread::scope(|scope| {
                        for _ in 0..workers {
                            scope.spawn(|| {
                                let mut local = None;
                                loop {
                                    let index = next_shard.fetch_add(1, Ordering::Relaxed);
                                    if index >= shards.len() {
                                        break;
                                    }
                                    run_one(index, &mut local);
                                }
                            });
                        }
                    });
                }
                let counters = visited.counters();
                let runs: Vec<ShardSlot> = slots
                    .into_iter()
                    .map(|slot| match slot.into_inner().expect("slot") {
                        ShardSlotState::Done(out) => ShardSlot::Done(out),
                        ShardSlotState::Skipped => ShardSlot::Skipped,
                        ShardSlotState::Pending => unreachable!("every shard was claimed"),
                    })
                    .collect();
                (runs, counters)
            };

            let workers = threads.max(1).min(shards.len().max(1));
            let shard_span = tmg_obs::span("checker:shards");
            let (runs, mut visited_counters) = run_shard_phase(workers);
            // Unwind before the sequential re-run and the reduction: a
            // cancelled phase's slots may be skipped mid-schedule, and
            // nothing downstream may observe them.
            checker.cancel.checkpoint();
            shard_runs = runs;
            if workers > 1
                && shard_runs.iter().any(
                    |s| matches!(s, ShardSlot::Done(out) if out.tripped || out.dedup_checks > 0),
                )
            {
                // A shard hit its op cap, or grew large enough for the
                // visited-table valve to engage.  Both make results depend on
                // how much speculative work the shard did before cross-shard
                // knowledge reached it — which is timing-dependent: the
                // give-up cutoff discards everything behind the first trip,
                // and dedup skips change the ops attribution.  To keep
                // resolutions bit-identical across thread counts, these rare
                // regimes re-run the shard schedule in order on one worker,
                // where knowledge is always complete before each shard
                // starts and every decision is a pure function of the
                // inputs.  (A multi-threaded run always does at least as
                // many pops per shard as the sequential schedule, so any
                // run the sequential schedule would trip or dedup is
                // re-run here too.)
                let (runs, counters) = run_shard_phase(1);
                checker.cancel.checkpoint();
                shard_runs = runs;
                visited_counters = counters;
            }
            drop(shard_span);
            // Publish metrics once, for the phase whose results are used.
            let (insertions, hits, collisions) = visited_counters;
            metrics::add_visited_insertions(insertions);
            metrics::add_visited_hits(hits);
            metrics::add_visited_collisions(collisions);
            metrics::add_shards_explored(
                shard_runs
                    .iter()
                    .filter(|s| matches!(s, ShardSlot::Done(_)))
                    .count() as u64,
            );
            metrics::add_shards_skipped(
                shard_runs
                    .iter()
                    .filter(|s| matches!(s, ShardSlot::Skipped))
                    .count() as u64,
            );
        }

        // Deterministic reduction over seed + shards in order.
        let mut resolutions: Vec<Option<Resolution>> = vec![None; queries.len()];
        let mut gave_up = seed_tripped;
        // The cutoff: shards at or before the first tripped one contribute;
        // results past it are discarded (the sequential search would have
        // given up there).
        let mut cutoff = shard_runs.len();
        for (i, slot) in shard_runs.iter().enumerate() {
            if let ShardSlot::Done(out) = slot {
                if out.tripped {
                    cutoff = i + 1;
                    gave_up = true;
                    break;
                }
            }
        }
        // Whether the whole reachable frontier was explored (Infeasible
        // verdicts are only sound then).  `AllSettled` counts: the traversal
        // stopped early only because every query already had a completion or
        // certification, which the per-query loop below consumes first.
        let fully_drained = match seed_exit {
            RunExit::Drained | RunExit::AllSettled => true,
            RunExit::Tripped => false,
            RunExit::ShardReady => cutoff == shard_runs.len(),
        };

        for (q, resolution) in resolutions.iter_mut().enumerate() {
            let mut cumulative = seed_out.query_ops[q];
            if let Some(c) = &seed_out.completions[q] {
                *resolution = Some(if c.ops_at_pop >= query_budget {
                    Resolution::Unknown
                } else {
                    Resolution::Feasible(c.witness.clone(), c.depth)
                });
                continue;
            }
            if cumulative >= query_budget {
                *resolution = Some(Resolution::Unknown);
                continue;
            }
            if seed_tripped {
                continue; // unresolved → per-query fallback
            }
            let mut settled = false;
            let mut hit_skip = false;
            for slot in shard_runs.iter().take(cutoff) {
                let out = match slot {
                    ShardSlot::Done(out) => out,
                    // A shard is only skipped once every query is settled by
                    // earlier *finished* shards, so a still-unsettled query
                    // cannot legitimately get here; bail to per-query
                    // fallback rather than mis-certify.
                    ShardSlot::Skipped => {
                        hit_skip = true;
                        break;
                    }
                };
                if let Some(c) = &out.completions[q] {
                    let total = cumulative + c.ops_at_pop;
                    *resolution = Some(if total >= query_budget {
                        Resolution::Unknown
                    } else {
                        Resolution::Feasible(c.witness.clone(), c.depth)
                    });
                    settled = true;
                    break;
                }
                cumulative += out.query_ops[q];
                if cumulative >= query_budget {
                    *resolution = Some(Resolution::Unknown);
                    settled = true;
                    break;
                }
            }
            if !settled && !hit_skip && fully_drained {
                *resolution = Some(if cumulative >= query_budget {
                    Resolution::Unknown
                } else {
                    Resolution::Infeasible
                });
            }
        }

        // Aggregate cost statistics (deterministic parts plus whatever the
        // contributing shards actually explored).
        stats.states_created = seed_out.states_created;
        stats.transitions_fired = seed_out.transitions_fired;
        stats.max_depth = seed_out.max_depth;
        let mut signatures = seed_out.signatures;
        let mut pops = seed_out.pops;
        for slot in shard_runs.iter().take(cutoff) {
            if let ShardSlot::Done(out) = slot {
                stats.states_created += out.states_created;
                stats.transitions_fired += out.transitions_fired;
                stats.max_depth = stats.max_depth.max(out.max_depth);
                signatures = signatures.max(out.signatures);
                pops += out.pops;
            }
        }
        metrics::add_states_explored(pops);
        stats.memory_estimate_bytes = stats.states_created * stats.state_bytes;
        stats.duration = start.elapsed();
        MultiQueryEngine {
            resolutions,
            gave_up,
            stats,
            signatures,
        }
    }

    /// Whether the exploration hit the shared budget before the frontier
    /// drained (queries it could not certify then report `None` from
    /// [`MultiQueryEngine::outcome`]).
    pub fn exhausted(&self) -> bool {
        self.gave_up
    }

    /// Cost statistics of the shared exploration.
    pub fn stats(&self) -> &CheckStats {
        &self.stats
    }

    /// Number of distinct decision signatures the exploration encountered.
    pub fn signature_count(&self) -> usize {
        self.signatures
    }

    /// The outcome for query `q`, or `None` when the shared budget ran out
    /// before the query settled (the caller should fall back to per-query
    /// search).
    pub fn outcome(&self, q: usize) -> Option<CheckOutcome> {
        self.resolutions[q].as_ref().map(|r| match r {
            Resolution::Feasible(witness, steps) => CheckOutcome::Feasible {
                witness: witness.clone(),
                steps: *steps,
            },
            Resolution::Unknown => CheckOutcome::Unknown,
            Resolution::Infeasible => CheckOutcome::Infeasible,
        })
    }

    /// The full [`CheckResult`] for query `q` (outcome plus the shared
    /// exploration's cost statistics), or `None` when unresolved.
    pub fn result(&self, q: usize) -> Option<CheckResult> {
        let outcome = self.outcome(q)?;
        let mut stats = self.stats.clone();
        stats.witness_steps = match &outcome {
            CheckOutcome::Feasible { steps, .. } => Some(*steps),
            _ => None,
        };
        Some(CheckResult {
            outcome,
            stats,
            opt_report: Default::default(),
        })
    }
}

/// A shard's published result.
enum ShardSlot {
    Done(RunOutput),
    Skipped,
}

enum ShardSlotState {
    Pending,
    Done(RunOutput),
    Skipped,
}

/// Deterministic settled-prefix tracking for the shard skip rule: the next
/// unprocessed shard index, the per-query op totals over the processed
/// prefix (seeded with the seed phase's counters), and which queries that
/// prefix already settles.
struct PrefixState {
    next: usize,
    cumulative: Vec<u64>,
    settled: Vec<bool>,
    open: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_function;
    use crate::opt::Optimisations;
    use tmg_cfg::{build_cfg, enumerate_region_paths};
    use tmg_minic::parse_function;

    fn all_queries(src: &str) -> (tmg_minic::Function, Vec<PathQuery>) {
        let f = parse_function(src).expect("parse");
        let lowered = build_cfg(&f);
        let paths =
            enumerate_region_paths(&lowered.cfg, lowered.regions.root(), 10_000).expect("paths");
        let queries = paths
            .into_iter()
            .map(|p| PathQuery::new(p.decisions))
            .collect();
        (f, queries)
    }

    fn assert_batch_matches_single(src: &str) {
        let (f, queries) = all_queries(src);
        let checker = ModelChecker::new();
        let batched = checker.check_many(&f, &queries);
        assert_eq!(batched.len(), queries.len());
        for (query, result) in queries.iter().zip(&batched) {
            let single = checker.find_test_data(&f, query);
            assert_eq!(
                result.outcome, single.outcome,
                "batched and single-query outcomes diverge on {src} for {query:?}"
            );
        }
    }

    #[test]
    fn batch_matches_single_on_nested_ifs() {
        assert_batch_matches_single(
            r#"
            void f(char a __range(0, 4), char b __range(0, 4)) {
                if (a > 2) { if (b == 1) { x(); } else { y(); } } else { z(); }
            }
        "#,
        );
    }

    #[test]
    fn batch_matches_single_with_infeasible_paths() {
        assert_batch_matches_single(
            r#"
            void f(char a __range(0, 4)) {
                if (a > 2) { x(); }
                if (a < 1) { y(); }
            }
        "#,
        );
    }

    #[test]
    fn batch_matches_single_on_switches_and_loops() {
        assert_batch_matches_single(
            r#"
            void f(char s __range(0, 5), char n __range(0, 3)) {
                char i = 0;
                switch (s) { case 0: a0(); break; case 3: a3(); break; default: d(); break; }
                while (i < n) __bound(3) { i = i + 1; }
            }
        "#,
        );
    }

    #[test]
    fn batch_matches_single_on_needle_guards() {
        assert_batch_matches_single(
            r#"
            void f(int key __range(0, 3000), char mode __range(0, 2)) {
                if (key == 1234) { hit(); }
                if (mode > 1) { fast(); } else { slow(); }
                if (key < 0) { never(); }
            }
        "#,
        );
    }

    #[test]
    fn mixed_batches_with_any_execution_queries_agree() {
        let (f, mut queries) =
            all_queries("void f(char a __range(0, 3)) { if (a > 1) { x(); } else { y(); } }");
        queries.push(PathQuery::any_execution());
        let checker = ModelChecker::new();
        let batched = checker.check_many(&f, &queries);
        for (query, result) in queries.iter().zip(&batched) {
            assert_eq!(result.outcome, checker.find_test_data(&f, query).outcome);
        }
    }

    #[test]
    fn signature_lattice_stays_small_on_unqueried_branches() {
        // Only the first branch is queried: the second must not contribute
        // signatures (relevance filter), so the lattice holds just the
        // monitor states of the queried branch.
        let src = r#"
            void f(char a __range(0, 3), char b __range(0, 3)) {
                if (a > 1) { x(); } else { y(); }
                if (b > 1) { p(); } else { q(); }
            }
        "#;
        let (f, queries) = all_queries(src);
        let first_branch: Vec<PathQuery> = queries
            .iter()
            .map(|q| PathQuery::new(q.decisions[..1].to_vec()))
            .take(2)
            .collect();
        let model = encode_function(&f, &Optimisations::all().encode_options());
        let prepared = PreparedModel::new(&model);
        let engine = MultiQueryEngine::explore(&ModelChecker::new(), &prepared, &first_branch);
        // Root, each query advanced, each query dead — the product lattice of
        // two one-decision monitors is at most 4 reachable vectors here.
        assert!(
            engine.signature_count() <= 4,
            "lattice blew up: {} signatures",
            engine.signature_count()
        );
        assert!(engine.outcome(0).is_some());
    }

    #[test]
    fn budget_exhaustion_certifies_unknown_like_the_single_query_engine() {
        let src = "void f(int a, int b) { if (a == 12345 && b == 23456) { x(); } }";
        let (f, queries) = all_queries(src);
        let tight = ModelChecker::with_optimisations(Optimisations::none()).with_budget(1_000);
        let model = encode_function(&f, &Optimisations::none().encode_options());
        let prepared = PreparedModel::new(&model);
        let engine = MultiQueryEngine::explore(&tight, &prepared, &queries);
        // A 1k budget cannot settle a 2^32 input space: the very first domain
        // split charges every query past its budget, so the engine certifies
        // Unknown for all of them without re-running any search.
        for q in 0..queries.len() {
            assert_eq!(engine.outcome(q), Some(CheckOutcome::Unknown));
        }
        // ... which is exactly what the per-query searches report.
        let results = tight.check_many(&f, &queries);
        for (query, result) in queries.iter().zip(&results) {
            assert_eq!(result.outcome, tight.find_test_data(&f, query).outcome);
        }
    }

    #[test]
    fn preserve_sensitive_batches_fall_back_and_still_agree() {
        // The `if (dbg > 0)` branch only survives dead-code elimination when
        // a query names it, so no shared model serves both queries; check_many
        // must fall back to per-query search and still agree.
        let src = "void f(int dbg __range(0, 1), char a __range(0, 2)) { int c; if (dbg > 0) { c = 1; } if (a > 1) { x(); } }";
        let (f, queries) = all_queries(src);
        assert!(queries.len() >= 4);
        let checker = ModelChecker::new();
        let batched = checker.check_many(&f, &queries);
        for (query, result) in queries.iter().zip(&batched) {
            assert_eq!(result.outcome, checker.find_test_data(&f, query).outcome);
        }
    }

    #[test]
    fn solo_batches_answer_like_the_single_query_engine() {
        let (f, queries) =
            all_queries("void f(char a __range(0, 3)) { if (a > 1) { x(); } else { y(); } }");
        let checker = ModelChecker::new();
        for query in &queries {
            let solo = checker.check_many(&f, std::slice::from_ref(query));
            assert_eq!(
                solo[0].outcome,
                checker.find_test_data(&f, query).outcome,
                "a one-query batch must cost and answer like the plain search"
            );
        }
    }

    #[test]
    fn shared_stats_report_one_exploration() {
        let (f, queries) = all_queries(
            "void f(char a __range(0, 7)) { if (a > 3) { x(); } if (a == 2) { y(); } }",
        );
        let checker = ModelChecker::new();
        let batched = checker.check_many(&f, &queries);
        let per_query_total: u64 = queries
            .iter()
            .map(|q| checker.find_test_data(&f, q).stats.states_created)
            .sum();
        // Every batched result reports the same shared exploration, whose
        // state count undercuts the per-query total.
        assert!(batched[0].stats.states_created <= per_query_total);
        assert!(batched
            .windows(2)
            .all(|w| w[0].stats.states_created == w[1].stats.states_created));
    }

    /// A function wide enough to trip the shard trigger (one 0..=20000 split
    /// at the first guard read).
    fn sharded_fixture() -> (tmg_minic::Function, Vec<PathQuery>) {
        all_queries(
            r#"
            void f(int key __range(0, 20000), char mode __range(0, 3)) {
                if (key == 1234) { h1(); }
                if (key == 19999) { h2(); }
                if (mode > 1) { fast(); } else { slow(); }
            }
        "#,
        )
    }

    #[test]
    fn sharded_exploration_matches_single_query_results() {
        let (f, queries) = sharded_fixture();
        let checker = ModelChecker::new();
        let model = encode_function(&f, &Optimisations::all().encode_options());
        let prepared = PreparedModel::new(&model);
        let engine = MultiQueryEngine::explore_with_threads(&checker, &prepared, &queries, 2);
        for (i, query) in queries.iter().enumerate() {
            let single = checker.check_prepared(&prepared, query);
            assert_eq!(
                engine.outcome(i).expect("settled"),
                single.outcome,
                "sharded vs single on {:?}",
                query.decisions
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_resolutions() {
        let (f, queries) = sharded_fixture();
        let checker = ModelChecker::new();
        let model = encode_function(&f, &Optimisations::all().encode_options());
        let prepared = PreparedModel::new(&model);
        let reference: Vec<Option<CheckOutcome>> = {
            let engine = MultiQueryEngine::explore_with_threads(&checker, &prepared, &queries, 1);
            (0..queries.len()).map(|q| engine.outcome(q)).collect()
        };
        for threads in [2, 4, 8] {
            let engine =
                MultiQueryEngine::explore_with_threads(&checker, &prepared, &queries, threads);
            let outcomes: Vec<Option<CheckOutcome>> =
                (0..queries.len()).map(|q| engine.outcome(q)).collect();
            assert_eq!(outcomes, reference, "{threads} threads diverge from 1");
        }
    }

    #[test]
    fn shard_chunking_is_deterministic_and_ordered() {
        let frontier = vec![
            FrontierEntry {
                loc: 1,
                monitor: 0,
                depth: 3,
                vals: vec![0],
                known: vec![0],
                split: Some((0, 0, 999)),
            },
            FrontierEntry {
                loc: 2,
                monitor: 0,
                depth: 1,
                vals: vec![0],
                known: vec![0],
                split: None,
            },
        ];
        let shards = build_shards(frontier.clone());
        let shards_again = build_shards(frontier);
        assert_eq!(shards.len(), shards_again.len());
        // Split ranges come out ascending and contiguous, concrete entries
        // keep their position after the split.
        let mut next_expected = 0i64;
        let mut saw_concrete = false;
        for shard in &shards {
            for item in &shard.items {
                match item.split {
                    Some((_, lo, hi)) => {
                        assert!(!saw_concrete, "split chunks precede the deeper entry");
                        assert_eq!(lo, next_expected);
                        assert!(hi >= lo);
                        next_expected = hi + 1;
                    }
                    None => saw_concrete = true,
                }
            }
        }
        assert_eq!(next_expected, 1000);
        assert!(saw_concrete);
    }
}
