//! Multi-query reachability: explore the state space once, answer every
//! coverage query from the shared annotated graph.
//!
//! The test-generation phase asks the model checker dozens of near-identical
//! questions about *one* function — one [`PathQuery`] per residual coverage
//! goal.  Asking them one at a time repeats the same depth-first exploration
//! of the same transition system over and over; the only thing that differs
//! between queries is the path monitor riding along.  The
//! [`MultiQueryEngine`] runs the exploration once and lets every monitor ride
//! the same traversal.
//!
//! # Decision signatures
//!
//! Each explored state carries a **decision-signature id**: an interned
//! summary of the branch decisions taken en route.  The signature is *not*
//! the literal decision sequence — that would distinguish every path and
//! defeat revisit deduplication — but the product of all per-query monitor
//! states it induces: for a batch of `N` queries, a signature is the vector
//! `m₁ … m_N` where `m_q` is how many of query `q`'s decisions have been
//! matched so far, or `DEAD` once the run has taken a wrong choice at a
//! branch query `q` expected next.  Two decision histories with the same
//! vector are indistinguishable to every query, now and forever, so the
//! vector is the exact quotient the queries induce on histories and the
//! signature lattice stays small.  A per-query slice-style relevance filter
//! keeps it smaller still: decisions at statements outside
//! [`PathQuery::stmts`] of every query in the batch never extend a signature
//! (they cannot advance or kill any monitor), so straight-line code and
//! unqueried branches leave the signature — and thus the dedup key —
//! untouched.  Signatures form a lattice ordered by per-query progress;
//! nodes are interned once, stepped via a memoised `(signature, transition)`
//! table, and each records which queries it completes (its *parent link* in
//! the lattice is the signature it was stepped from, which is how a witness
//! decision history can be reconstructed when needed).
//!
//! # Answering queries
//!
//! The traversal is the same packed-arena DFS as the single-query engine
//! (same split order, same depth budget), so states pop in exactly the order
//! the single-query search would pop the states of its own pruned subtree.
//! Query `q` is **feasible** iff some popped state's signature has
//! `m_q = len(q)`; the first such pop is, by the order-preservation argument
//! above, precisely the state the single-query search reports, so the
//! recorded witness input vector and step count are bit-identical to
//! [`ModelChecker::find_test_data`].  A query with no completing signature
//! after the stack drains is **infeasible**.  Coverage lookups are a
//! membership scan over the signature set, witness extraction a lookup of
//! the first-pop record.
//!
//! # Per-query budget accounting
//!
//! The single-query engine charges each search two kinds of ops — states
//! created and transitions fired — against
//! [`ModelChecker::max_transitions`], and reports
//! [`CheckOutcome::Unknown`](crate::CheckOutcome::Unknown) when the budget
//! trips.  The shared traversal reproduces those counters *per query*
//! without per-query work: every op is charged to the signature it occurs
//! under (pushes and splits to the state's signature, fires to the
//! post-decision signature — a transition whose decision kills query `q` is
//! exactly the transition the single-query search prunes before counting),
//! and query `q`'s counter is the sum over signatures in which `q` is not
//! dead.  By the same order preservation, that sum equals the single-query
//! search's own counter at the corresponding point, so the engine knows
//! *exactly* when the per-query search would have given up: a query whose
//! counter reaches the budget before its first completing pop is a
//! **certified Unknown**, a completing pop under budget is Feasible, a
//! drained stack under budget is Infeasible.  This is what lets one shared
//! exploration settle a batch whose members each individually exhaust the
//! budget, instead of re-running every exhausting search.  The shared run
//! itself is allowed several multiples of the per-query budget (it is doing
//! many queries' work) and stops as soon as every query is settled; whatever
//! is still unsettled when it stops fall back to per-query search.
//!
//! The traversal runs without revisit dedup: dedup skips work the
//! single-query engines would count, which would silently undercount the
//! per-query budget attribution.  (On searches that finish within budget
//! dedup never changes a verdict or witness anyway; on budget-bound searches
//! the arena engine's adaptive dedup has always been documented as able to
//! settle where the undeduped baseline reports Unknown — the accounting here
//! is bit-exact against the undeduped reference semantics.)  The flip side
//! is the worst case on heavily reconvergent state spaces: where per-query
//! dedup would prune revisits, the shared run re-explores them, and a batch
//! that then fails to certify anything costs up to the shared budget cap on
//! top of the per-query fallbacks — which is why the cap is a small multiple
//! of one query's budget rather than "until drained".

use crate::checker::{
    eval_packed, witness_packed, CheckOutcome, CheckResult, CheckStats, Eval, ModelChecker,
    PathQuery, StateArena,
};
use crate::prepared::{PreparedModel, PreparedTransition};
use rustc_hash::FxHashMap;
use std::collections::HashSet;
use std::time::Instant;
use tmg_minic::ast::StmtId;
use tmg_minic::value::InputVector;

/// Monitor value marking a query that can no longer be completed on this
/// decision history (a wrong choice was taken at an expected branch).
const DEAD: u32 = u32::MAX;

/// Interned id of a decision signature (an index into [`SigLattice::vecs`]).
type SigId = u32;

/// The interned signature lattice of one exploration, including the per-
/// signature op counters that reconstruct every query's private budget.
struct SigLattice {
    /// Monitor vector of each signature (`decisions matched` per query, or
    /// [`DEAD`]).
    vecs: Vec<Box<[u32]>>,
    /// Vector → id interning table.
    intern: FxHashMap<Box<[u32]>, SigId>,
    /// Queries each signature completes (`m_q == len(q)`).
    completes: Vec<Vec<u32>>,
    /// Whether a signature still completes a query that has no recorded
    /// resolution (cleared on first pop so later pops skip the scan).
    pending: Vec<bool>,
    /// Budget ops (states created + transitions fired) charged under each
    /// signature.
    ops: Vec<u64>,
    /// Liveness cache: whether the signature still matters to any unresolved
    /// query (some unresolved query is neither dead nor settled under it).
    live: Vec<bool>,
    /// Resolution epoch at which each `live` entry was computed.
    live_epoch: Vec<u64>,
    /// Memoised signature step per `(signature, transition index)`.
    step_memo: FxHashMap<u64, SigId>,
}

impl SigLattice {
    fn new(queries: &[PathQuery]) -> SigLattice {
        let mut lattice = SigLattice {
            vecs: Vec::new(),
            intern: FxHashMap::default(),
            completes: Vec::new(),
            pending: Vec::new(),
            ops: Vec::new(),
            live: Vec::new(),
            live_epoch: Vec::new(),
            step_memo: FxHashMap::default(),
        };
        // Root signature: nothing matched yet.  Queries of length zero (the
        // `any_execution` probe) are complete right here.
        lattice.intern_vec(vec![0u32; queries.len()].into_boxed_slice(), queries);
        lattice
    }

    fn intern_vec(&mut self, vec: Box<[u32]>, queries: &[PathQuery]) -> SigId {
        if let Some(&id) = self.intern.get(&vec) {
            return id;
        }
        let id = self.vecs.len() as SigId;
        let completes: Vec<u32> = queries
            .iter()
            .enumerate()
            .filter(|(q, query)| vec[*q] as usize == query.decisions.len())
            .map(|(q, _)| q as u32)
            .collect();
        self.pending.push(!completes.is_empty());
        self.completes.push(completes);
        self.ops.push(0);
        self.live.push(true);
        self.live_epoch.push(0);
        self.intern.insert(vec.clone(), id);
        self.vecs.push(vec);
        id
    }

    /// Whether `sig` still matters to any unresolved query, recomputing the
    /// cached answer when resolutions have advanced since it was last
    /// checked.  A signature in which every unresolved query is dead heads a
    /// subtree that no single-query search would explore (each of them
    /// pruned it at or before the killing decision), so the shared traversal
    /// prunes it too — the op attribution of unresolved queries is untouched
    /// by construction.
    fn is_live(&mut self, sig: SigId, resolutions: &[Option<Resolution>], epoch: u64) -> bool {
        let i = sig as usize;
        if self.live_epoch[i] != epoch {
            self.live_epoch[i] = epoch;
            self.live[i] = self.vecs[i]
                .iter()
                .zip(resolutions)
                .any(|(&m, r)| r.is_none() && m != DEAD);
        }
        self.live[i]
    }

    /// Steps `sig` over the decision of transition `t`, interning the
    /// successor on first encounter.
    fn step(&mut self, sig: SigId, t: &PreparedTransition, queries: &[PathQuery]) -> SigId {
        let key = (u64::from(sig) << 32) | u64::from(t.index);
        if let Some(&next) = self.step_memo.get(&key) {
            return next;
        }
        let (stmt, choice) = t.decision.expect("stepped transitions carry a decision");
        let cur = self.vecs[sig as usize].clone();
        let mut next_vec: Option<Box<[u32]>> = None;
        for (q, query) in queries.iter().enumerate() {
            let m = cur[q];
            if m == DEAD || m as usize == query.decisions.len() {
                continue;
            }
            let (expected_stmt, expected_choice) = query.decisions[m as usize];
            if expected_stmt == stmt {
                let stepped = if expected_choice == choice {
                    m + 1
                } else {
                    DEAD
                };
                next_vec.get_or_insert_with(|| cur.clone())[q] = stepped;
            }
        }
        let next = match next_vec {
            None => sig,
            Some(vec) => self.intern_vec(vec, queries),
        };
        self.step_memo.insert(key, next);
        next
    }

    /// Query `q`'s reconstructed private op counter: the ops charged under
    /// every signature in which `q` is still matchable or complete.  By order
    /// preservation this equals the op counter of `q`'s own single-query
    /// search at the corresponding point of its traversal.
    fn query_ops(&self, q: usize) -> u64 {
        self.vecs
            .iter()
            .zip(&self.ops)
            .filter(|(vec, _)| vec[q] != DEAD)
            .map(|(_, ops)| *ops)
            .sum()
    }
}

/// How the shared exploration settled one query.
#[derive(Debug, Clone)]
enum Resolution {
    /// First completing pop under the per-query budget: witness inputs and
    /// witness run length.
    Feasible(InputVector, u64),
    /// The query's reconstructed op counter hit the per-query budget before
    /// a completing pop: its own search would have reported Unknown.
    Unknown,
    /// The stack drained with the query's counter under budget and no
    /// completing pop.
    Infeasible,
}

/// Multiplier on [`ModelChecker::max_transitions`] bounding the shared
/// exploration: doing the work of up to `n` queries, it may spend up to
/// `min(n, 4)` per-query budgets before giving the rest back to per-query
/// fallback.
const SHARED_BUDGET_FACTOR: u64 = 4;

/// Ops between certification sweeps (checking every open query's
/// reconstructed counter against the budget).
const SWEEP_INTERVAL: u64 = 1 << 20;

/// The annotated state graph of one shared exploration, ready to answer any
/// of the queries it was explored for.
#[derive(Debug)]
pub struct MultiQueryEngine {
    /// Per query: how the shared exploration settled it (`None` = give the
    /// query back to per-query search).
    resolutions: Vec<Option<Resolution>>,
    /// Whether the exploration stopped at the shared budget with the stack
    /// non-empty.
    gave_up: bool,
    /// Cost of the shared exploration.
    stats: CheckStats,
    /// Number of distinct decision signatures encountered.
    signatures: usize,
}

impl MultiQueryEngine {
    /// Explores `prepared`'s state space once and settles every query it can
    /// within `min(queries, 4)` multiples of `checker`'s per-query budget.
    pub fn explore(
        checker: &ModelChecker,
        prepared: &PreparedModel<'_>,
        queries: &[PathQuery],
    ) -> MultiQueryEngine {
        let start = Instant::now();
        let model = prepared.model;
        let vars_n = model.vars.len();
        let words = vars_n.div_ceil(64).max(1);

        let mut stats = CheckStats {
            state_bits: model.state_bits(),
            state_bytes: model.state_bytes(),
            model_transitions: model.transitions.len(),
            model_vars: model.vars.len(),
            ..CheckStats::default()
        };

        // Relevance filter: transitions whose decision statement no query
        // mentions can never move a monitor, so they skip signature stepping
        // entirely.
        let relevant_stmts: HashSet<StmtId> = queries
            .iter()
            .flat_map(|q| q.stmts().iter().copied())
            .collect();
        let mut relevant = vec![false; model.transitions.len()];
        for transitions in &prepared.program.outgoing {
            for t in transitions {
                if let Some((stmt, _)) = t.decision {
                    relevant[t.index as usize] = relevant_stmts.contains(&stmt);
                }
            }
        }

        let query_budget = checker.max_transitions;
        let shared_budget =
            query_budget.saturating_mul(SHARED_BUDGET_FACTOR.min(queries.len().max(1) as u64));
        let mut next_sweep = SWEEP_INTERVAL;

        let mut lattice = SigLattice::new(queries);
        let mut resolutions: Vec<Option<Resolution>> = vec![None; queries.len()];
        let mut open = queries.len();
        // Bumped on every resolution so cached per-signature liveness is
        // recomputed lazily.
        let mut epoch: u64 = 1;

        let pool = &prepared.program.pool;
        let mut arena = StateArena::new(vars_n, words);
        {
            let mut vals = vec![0i64; vars_n];
            let mut known = vec![0u64; words];
            for (i, var) in model.vars.iter().enumerate() {
                if let Some(init) = var.init {
                    vals[i] = init;
                    known[i >> 6] |= 1 << (i & 63);
                }
            }
            arena.push(model.initial.index() as u32, 0, 0, &vals, &known);
        }
        stats.states_created = 1;
        lattice.ops[0] += 1;

        let mut cur_vals = vec![0i64; vars_n];
        let mut cur_known = vec![0u64; words];
        let mut child_vals = vec![0i64; vars_n];
        let mut child_known = vec![0u64; words];
        let mut enabled: Vec<usize> = Vec::with_capacity(8);
        let mut effect_cache: Vec<Eval> = Vec::with_capacity(8);
        let mut effect_offsets: Vec<usize> = Vec::with_capacity(8);
        let mut gave_up = false;
        let mut drained = true;

        'search: while let Some(entry) = arena.pop(&mut cur_vals, &mut cur_known) {
            let total_ops = stats.transitions_fired + stats.states_created;
            if total_ops >= shared_budget {
                gave_up = true;
                drained = false;
                break 'search;
            }
            if total_ops >= next_sweep {
                // Certification sweep: any open query whose reconstructed
                // counter has hit its budget is settled as Unknown — its own
                // search would have given up by now.
                next_sweep = total_ops + SWEEP_INTERVAL;
                for (q, slot) in resolutions.iter_mut().enumerate() {
                    if slot.is_none() && lattice.query_ops(q) >= query_budget {
                        *slot = Some(Resolution::Unknown);
                        open -= 1;
                        epoch += 1;
                    }
                }
                if open == 0 {
                    drained = false;
                    break 'search;
                }
            }
            stats.max_depth = stats.max_depth.max(entry.depth);
            let sig = entry.monitor;
            // Membership scan: does this state's signature complete a query
            // that is still open?  Pops happen in the exact DFS order of the
            // single-query search, so the first hit per query *is* the
            // single-query witness state — unless that search's budget
            // counter had already tripped, in which case it never got here.
            if lattice.pending[sig as usize] {
                for i in 0..lattice.completes[sig as usize].len() {
                    let q = lattice.completes[sig as usize][i] as usize;
                    if resolutions[q].is_none() {
                        resolutions[q] = Some(if lattice.query_ops(q) >= query_budget {
                            Resolution::Unknown
                        } else {
                            Resolution::Feasible(
                                witness_packed(model, &cur_vals, &cur_known),
                                entry.depth,
                            )
                        });
                        open -= 1;
                        epoch += 1;
                    }
                }
                lattice.pending[sig as usize] = false;
                if open == 0 {
                    // Every query is settled; the rest of the exploration
                    // could only prove infeasibilities nobody asked about.
                    drained = false;
                    break 'search;
                }
            }
            if !lattice.is_live(sig, &resolutions, epoch) {
                // Every unresolved query is dead here: no single-query search
                // would expand this state.
                continue;
            }
            if entry.depth >= checker.max_depth {
                continue;
            }
            let transitions = &prepared.program.outgoing[entry.loc as usize];
            if transitions.is_empty() {
                continue;
            }

            // Enabled-set computation and lazy splitting, identical to the
            // single-query engine.
            let mut split_var: Option<usize> = None;
            enabled.clear();
            for (i, t) in transitions.iter().enumerate() {
                match t.guard {
                    None => enabled.push(i),
                    Some(g) => match eval_packed(pool, g, &cur_vals, &cur_known) {
                        Eval::Known(v) => {
                            if v != 0 {
                                enabled.push(i);
                            }
                        }
                        Eval::Unknown(var) => {
                            split_var = Some(var);
                            break;
                        }
                        Eval::Error => {}
                    },
                }
            }
            effect_cache.clear();
            effect_offsets.clear();
            if split_var.is_none() {
                'effects: for &i in &enabled {
                    effect_offsets.push(effect_cache.len());
                    for &(_, e) in &transitions[i].effect {
                        let value = eval_packed(pool, e, &cur_vals, &cur_known);
                        if let Eval::Unknown(var) = value {
                            split_var = Some(var);
                            break 'effects;
                        }
                        effect_cache.push(value);
                    }
                }
            }
            if let Some(var) = split_var {
                let (lo, hi) = model.vars[var].domain;
                stats.states_created += model.vars[var].domain_size();
                lattice.ops[sig as usize] += model.vars[var].domain_size();
                arena.push_split(
                    entry.loc,
                    sig,
                    entry.depth,
                    &cur_vals,
                    &cur_known,
                    var as u32,
                    lo,
                    hi,
                );
                continue;
            }
            // Fire enabled transitions (in reverse so the first is explored
            // first by the DFS).  Unlike the single-query monitor there is no
            // pruning: a wrong decision only kills the affected monitors
            // inside the signature — the run stays interesting to the other
            // queries, and the fire/push ops are charged to the post-decision
            // signature, which is exactly the set of queries whose own search
            // would have paid for them.
            for pos in (0..enabled.len()).rev() {
                let t: &PreparedTransition = &transitions[enabled[pos]];
                let sig_next = if relevant[t.index as usize] {
                    lattice.step(sig, t, queries)
                } else {
                    sig
                };
                if sig_next != sig && !lattice.is_live(sig_next, &resolutions, epoch) {
                    // The decision just killed the last unresolved query that
                    // was still matchable on this run: every single-query
                    // search prunes this transition (at this decision or an
                    // earlier one), so the shared traversal does too, and no
                    // unresolved query's op counter is owed anything for it.
                    continue;
                }
                child_vals.copy_from_slice(&cur_vals);
                child_known.copy_from_slice(&cur_known);
                let mut failed = false;
                let cached = &effect_cache[effect_offsets[pos]..];
                for (&(target, _), value) in t.effect.iter().zip(cached) {
                    match *value {
                        Eval::Known(v) => {
                            let target = target as usize;
                            if target >= vars_n {
                                failed = true;
                                break;
                            }
                            child_vals[target] = model.vars[target].ty.wrap(v);
                            child_known[target >> 6] |= 1 << (target & 63);
                        }
                        Eval::Unknown(_) | Eval::Error => {
                            failed = true;
                            break;
                        }
                    }
                }
                if failed {
                    continue;
                }
                stats.transitions_fired += 1;
                stats.states_created += 1;
                lattice.ops[sig_next as usize] += 2;
                arena.push(t.to, sig_next, entry.depth + 1, &child_vals, &child_known);
            }
        }

        if drained {
            // Stack empty: every open query either ran out of its own budget
            // on the way (Unknown) or provably has no completing state
            // (Infeasible).
            for (q, slot) in resolutions.iter_mut().enumerate() {
                if slot.is_none() {
                    *slot = Some(if lattice.query_ops(q) >= query_budget {
                        Resolution::Unknown
                    } else {
                        Resolution::Infeasible
                    });
                }
            }
        } else if gave_up {
            // Shared budget exhausted: certify what can be certified, give
            // the rest back to per-query search.
            for (q, slot) in resolutions.iter_mut().enumerate() {
                if slot.is_none() && lattice.query_ops(q) >= query_budget {
                    *slot = Some(Resolution::Unknown);
                }
            }
        }

        stats.memory_estimate_bytes = stats.states_created * stats.state_bytes;
        stats.duration = start.elapsed();
        MultiQueryEngine {
            resolutions,
            gave_up,
            stats,
            signatures: lattice.vecs.len(),
        }
    }

    /// Whether the exploration hit the shared budget before the stack
    /// drained (queries it could not certify then report `None` from
    /// [`MultiQueryEngine::outcome`]).
    pub fn exhausted(&self) -> bool {
        self.gave_up
    }

    /// Cost statistics of the shared exploration.
    pub fn stats(&self) -> &CheckStats {
        &self.stats
    }

    /// Number of distinct decision signatures the exploration encountered.
    pub fn signature_count(&self) -> usize {
        self.signatures
    }

    /// The outcome for query `q`, or `None` when the shared budget ran out
    /// before the query settled (the caller should fall back to per-query
    /// search).
    pub fn outcome(&self, q: usize) -> Option<CheckOutcome> {
        self.resolutions[q].as_ref().map(|r| match r {
            Resolution::Feasible(witness, steps) => CheckOutcome::Feasible {
                witness: witness.clone(),
                steps: *steps,
            },
            Resolution::Unknown => CheckOutcome::Unknown,
            Resolution::Infeasible => CheckOutcome::Infeasible,
        })
    }

    /// The full [`CheckResult`] for query `q` (outcome plus the shared
    /// exploration's cost statistics), or `None` when unresolved.
    pub fn result(&self, q: usize) -> Option<CheckResult> {
        let outcome = self.outcome(q)?;
        let mut stats = self.stats.clone();
        stats.witness_steps = match &outcome {
            CheckOutcome::Feasible { steps, .. } => Some(*steps),
            _ => None,
        };
        Some(CheckResult {
            outcome,
            stats,
            opt_report: Default::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_function;
    use crate::opt::Optimisations;
    use tmg_cfg::{build_cfg, enumerate_region_paths};
    use tmg_minic::parse_function;

    fn all_queries(src: &str) -> (tmg_minic::Function, Vec<PathQuery>) {
        let f = parse_function(src).expect("parse");
        let lowered = build_cfg(&f);
        let paths =
            enumerate_region_paths(&lowered.cfg, lowered.regions.root(), 10_000).expect("paths");
        let queries = paths
            .into_iter()
            .map(|p| PathQuery::new(p.decisions))
            .collect();
        (f, queries)
    }

    fn assert_batch_matches_single(src: &str) {
        let (f, queries) = all_queries(src);
        let checker = ModelChecker::new();
        let batched = checker.check_many(&f, &queries);
        assert_eq!(batched.len(), queries.len());
        for (query, result) in queries.iter().zip(&batched) {
            let single = checker.find_test_data(&f, query);
            assert_eq!(
                result.outcome, single.outcome,
                "batched and single-query outcomes diverge on {src} for {query:?}"
            );
        }
    }

    #[test]
    fn batch_matches_single_on_nested_ifs() {
        assert_batch_matches_single(
            r#"
            void f(char a __range(0, 4), char b __range(0, 4)) {
                if (a > 2) { if (b == 1) { x(); } else { y(); } } else { z(); }
            }
        "#,
        );
    }

    #[test]
    fn batch_matches_single_with_infeasible_paths() {
        assert_batch_matches_single(
            r#"
            void f(char a __range(0, 4)) {
                if (a > 2) { x(); }
                if (a < 1) { y(); }
            }
        "#,
        );
    }

    #[test]
    fn batch_matches_single_on_switches_and_loops() {
        assert_batch_matches_single(
            r#"
            void f(char s __range(0, 5), char n __range(0, 3)) {
                char i = 0;
                switch (s) { case 0: a0(); break; case 3: a3(); break; default: d(); break; }
                while (i < n) __bound(3) { i = i + 1; }
            }
        "#,
        );
    }

    #[test]
    fn batch_matches_single_on_needle_guards() {
        assert_batch_matches_single(
            r#"
            void f(int key __range(0, 3000), char mode __range(0, 2)) {
                if (key == 1234) { hit(); }
                if (mode > 1) { fast(); } else { slow(); }
                if (key < 0) { never(); }
            }
        "#,
        );
    }

    #[test]
    fn mixed_batches_with_any_execution_queries_agree() {
        let (f, mut queries) =
            all_queries("void f(char a __range(0, 3)) { if (a > 1) { x(); } else { y(); } }");
        queries.push(PathQuery::any_execution());
        let checker = ModelChecker::new();
        let batched = checker.check_many(&f, &queries);
        for (query, result) in queries.iter().zip(&batched) {
            assert_eq!(result.outcome, checker.find_test_data(&f, query).outcome);
        }
    }

    #[test]
    fn signature_lattice_stays_small_on_unqueried_branches() {
        // Only the first branch is queried: the second must not contribute
        // signatures (relevance filter), so the lattice holds just the
        // monitor states of the queried branch.
        let src = r#"
            void f(char a __range(0, 3), char b __range(0, 3)) {
                if (a > 1) { x(); } else { y(); }
                if (b > 1) { p(); } else { q(); }
            }
        "#;
        let (f, queries) = all_queries(src);
        let first_branch: Vec<PathQuery> = queries
            .iter()
            .map(|q| PathQuery::new(q.decisions[..1].to_vec()))
            .take(2)
            .collect();
        let model = encode_function(&f, &Optimisations::all().encode_options());
        let prepared = PreparedModel::new(&model);
        let engine = MultiQueryEngine::explore(&ModelChecker::new(), &prepared, &first_branch);
        // Root, each query advanced, each query dead — the product lattice of
        // two one-decision monitors is at most 4 reachable vectors here.
        assert!(
            engine.signature_count() <= 4,
            "lattice blew up: {} signatures",
            engine.signature_count()
        );
        assert!(engine.outcome(0).is_some());
    }

    #[test]
    fn budget_exhaustion_certifies_unknown_like_the_single_query_engine() {
        let src = "void f(int a, int b) { if (a == 12345 && b == 23456) { x(); } }";
        let (f, queries) = all_queries(src);
        let tight = ModelChecker::with_optimisations(Optimisations::none()).with_budget(1_000);
        let model = encode_function(&f, &Optimisations::none().encode_options());
        let prepared = PreparedModel::new(&model);
        let engine = MultiQueryEngine::explore(&tight, &prepared, &queries);
        // A 1k budget cannot settle a 2^32 input space: the very first domain
        // split charges every query past its budget, so the engine certifies
        // Unknown for all of them without re-running any search.
        for q in 0..queries.len() {
            assert_eq!(engine.outcome(q), Some(CheckOutcome::Unknown));
        }
        // ... which is exactly what the per-query searches report.
        let results = tight.check_many(&f, &queries);
        for (query, result) in queries.iter().zip(&results) {
            assert_eq!(result.outcome, tight.find_test_data(&f, query).outcome);
        }
    }

    #[test]
    fn preserve_sensitive_batches_fall_back_and_still_agree() {
        // The `if (dbg > 0)` branch only survives dead-code elimination when
        // a query names it, so no shared model serves both queries; check_many
        // must fall back to per-query search and still agree.
        let src = "void f(int dbg __range(0, 1), char a __range(0, 2)) { int c; if (dbg > 0) { c = 1; } if (a > 1) { x(); } }";
        let (f, queries) = all_queries(src);
        assert!(queries.len() >= 4);
        let checker = ModelChecker::new();
        let batched = checker.check_many(&f, &queries);
        for (query, result) in queries.iter().zip(&batched) {
            assert_eq!(result.outcome, checker.find_test_data(&f, query).outcome);
        }
    }

    #[test]
    fn solo_batches_answer_like_the_single_query_engine() {
        let (f, queries) =
            all_queries("void f(char a __range(0, 3)) { if (a > 1) { x(); } else { y(); } }");
        let checker = ModelChecker::new();
        for query in &queries {
            let solo = checker.check_many(&f, std::slice::from_ref(query));
            assert_eq!(
                solo[0].outcome,
                checker.find_test_data(&f, query).outcome,
                "a one-query batch must cost and answer like the plain search"
            );
        }
    }

    #[test]
    fn shared_stats_report_one_exploration() {
        let (f, queries) = all_queries(
            "void f(char a __range(0, 7)) { if (a > 3) { x(); } if (a == 2) { y(); } }",
        );
        let checker = ModelChecker::new();
        let batched = checker.check_many(&f, &queries);
        let per_query_total: u64 = queries
            .iter()
            .map(|q| checker.find_test_data(&f, q).stats.states_created)
            .sum();
        // Every batched result reports the same shared exploration, whose
        // state count undercuts the per-query total.
        assert!(batched[0].stats.states_created <= per_query_total);
        assert!(batched
            .windows(2)
            .all(|w| w[0].stats.states_created == w[1].stats.states_created));
    }
}
