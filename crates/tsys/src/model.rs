//! Guarded transition systems over finite-domain scalar variables.
//!
//! The model mirrors what the paper's C-to-SAL translation produces: a set of
//! state variables `x₁ … xₙ` with finite domains `D₁ … Dₙ`, a program counter
//! over a finite set of locations, and guarded transitions whose effects are
//! simultaneous assignments.  The number of bits required to encode the state
//! vector (`Σ bits(Dᵢ)` plus the program-counter bits) is the quantity the
//! paper's Section 3.1 identifies as the limiting factor for model-checking
//! performance.

use serde::{Deserialize, Serialize};
use std::fmt;
use tmg_minic::ast::{Expr, StmtId};
use tmg_minic::interp::BranchChoice;
use tmg_minic::types::Ty;

/// A location of the transition system's program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LocId(pub u32);

impl LocId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Whether a state variable is an analysis input (test-data parameter) or an
/// internal program variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VarRole {
    /// Function parameter: its initial value is the test data the checker
    /// searches for.
    Input,
    /// Local variable of the analysed function.  If it has no initial value
    /// it is *uninitialised* and the model checker may pick any value for it
    /// (enlarging the initial state set, exactly as Section 3.2.5 describes).
    Local,
}

/// A state variable of the model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateVar {
    /// Variable name (matches the mini-C declaration).
    pub name: String,
    /// Declared mini-C type.
    pub ty: Ty,
    /// Finite domain `lo..=hi` used by the checker and for bit accounting.
    pub domain: (i64, i64),
    /// Initial value; `None` means the variable is free in the initial state.
    pub init: Option<i64>,
    /// Input or local.
    pub role: VarRole,
}

impl StateVar {
    /// Number of bits needed to encode the variable's domain.
    pub fn bits(&self) -> u32 {
        bits_for_domain(self.domain)
    }

    /// Number of values in the domain.
    pub fn domain_size(&self) -> u64 {
        let (lo, hi) = self.domain;
        (hi - lo + 1).max(1) as u64
    }

    /// Whether the variable's initial value is unconstrained.
    pub fn is_free(&self) -> bool {
        self.init.is_none()
    }
}

/// Number of bits needed for an inclusive integer range.
pub fn bits_for_domain((lo, hi): (i64, i64)) -> u32 {
    let span = (hi - lo).max(0) as u64;
    if span == 0 {
        return 0;
    }
    64 - span.leading_zeros()
}

/// A guarded transition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// Source location.
    pub from: LocId,
    /// Guard; `None` means always enabled.
    pub guard: Option<Expr>,
    /// Simultaneous assignments `(variable, expression)` applied on firing.
    pub effect: Vec<(String, Expr)>,
    /// Destination location.
    pub to: LocId,
    /// If this transition corresponds to one outcome of a branching C
    /// statement, the statement and the outcome it encodes.  The checker's
    /// path monitor watches these.
    pub decision: Option<(StmtId, BranchChoice)>,
}

impl Transition {
    /// Variables read by the guard and the effect expressions.
    pub fn read_vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        if let Some(g) = &self.guard {
            out.extend(g.referenced_vars());
        }
        for (_, e) in &self.effect {
            out.extend(e.referenced_vars());
        }
        out
    }

    /// Variables written by the effect.
    pub fn written_vars(&self) -> Vec<&str> {
        self.effect.iter().map(|(v, _)| v.as_str()).collect()
    }
}

/// A complete transition system for one analysed function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Model {
    /// Name of the encoded function.
    pub name: String,
    /// State variables.
    pub vars: Vec<StateVar>,
    /// Number of program-counter locations.
    pub locations: u32,
    /// Initial location.
    pub initial: LocId,
    /// Final location (function returned / fell off the end).
    pub final_loc: LocId,
    /// Transitions.
    pub transitions: Vec<Transition>,
}

impl Model {
    /// Looks up a state variable by name.
    pub fn var(&self, name: &str) -> Option<&StateVar> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Bits needed for the data part of the state vector (`Σ bits(Dᵢ)`).
    ///
    /// The paper reports that SAL needs this to stay below roughly 700 bits
    /// for acceptable performance; [`Model::state_bits`] is what the Table-2
    /// optimisations reduce.
    pub fn data_bits(&self) -> u32 {
        self.vars.iter().map(StateVar::bits).sum()
    }

    /// Bits needed for the program counter.
    pub fn pc_bits(&self) -> u32 {
        bits_for_domain((0, i64::from(self.locations.saturating_sub(1))))
    }

    /// Total state-vector bits (data + program counter).
    pub fn state_bits(&self) -> u32 {
        self.data_bits() + self.pc_bits()
    }

    /// Bytes needed to store one concrete state (used for the memory
    /// estimates reported in the Table-2 reproduction).
    pub fn state_bytes(&self) -> u64 {
        u64::from(self.state_bits().div_ceil(8))
    }

    /// Number of free variables (whose initial value the checker must pick):
    /// the size of the initial-state dimensionality the paper calls `D_I`.
    pub fn free_var_count(&self) -> usize {
        self.vars.iter().filter(|v| v.is_free()).count()
    }

    /// Product of the free variables' domain sizes — `|D_I|`, saturating.
    pub fn initial_state_count(&self) -> u128 {
        self.vars
            .iter()
            .filter(|v| v.is_free())
            .map(|v| u128::from(v.domain_size()))
            .fold(1u128, |acc, d| acc.saturating_mul(d))
    }

    /// Transitions leaving `loc`.
    pub fn transitions_from(&self, loc: LocId) -> Vec<&Transition> {
        self.transitions.iter().filter(|t| t.from == loc).collect()
    }

    /// Basic well-formedness: locations in range, guard/decision consistency.
    pub fn validate(&self) -> Result<(), String> {
        for t in &self.transitions {
            if t.from.0 >= self.locations || t.to.0 >= self.locations {
                return Err(format!(
                    "transition {:?} references an out-of-range location",
                    t
                ));
            }
            for v in t.written_vars() {
                if self.var(v).is_none() {
                    return Err(format!("transition writes unknown variable `{v}`"));
                }
            }
            for v in t.read_vars() {
                if self.var(v).is_none() {
                    return Err(format!("transition reads unknown variable `{v}`"));
                }
            }
        }
        if self.initial.0 >= self.locations || self.final_loc.0 >= self.locations {
            return Err("initial or final location out of range".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmg_minic::ast::Expr;

    fn sample_model() -> Model {
        Model {
            name: "m".to_owned(),
            vars: vec![
                StateVar {
                    name: "a".to_owned(),
                    ty: Ty::I8,
                    domain: (0, 3),
                    init: None,
                    role: VarRole::Input,
                },
                StateVar {
                    name: "b".to_owned(),
                    ty: Ty::I16,
                    domain: (-32768, 32767),
                    init: Some(0),
                    role: VarRole::Local,
                },
            ],
            locations: 3,
            initial: LocId(0),
            final_loc: LocId(2),
            transitions: vec![Transition {
                from: LocId(0),
                guard: Some(Expr::var("a")),
                effect: vec![("b".to_owned(), Expr::int(1))],
                to: LocId(1),
                decision: None,
            }],
        }
    }

    #[test]
    fn bits_for_domain_matches_expectations() {
        assert_eq!(bits_for_domain((0, 0)), 0);
        assert_eq!(bits_for_domain((0, 1)), 1);
        assert_eq!(bits_for_domain((0, 3)), 2);
        assert_eq!(bits_for_domain((0, 255)), 8);
        assert_eq!(bits_for_domain((-128, 127)), 8);
        assert_eq!(bits_for_domain((-32768, 32767)), 16);
    }

    #[test]
    fn state_bits_sum_data_and_pc() {
        let m = sample_model();
        assert_eq!(m.data_bits(), 2 + 16);
        assert_eq!(m.pc_bits(), 2);
        assert_eq!(m.state_bits(), 20);
        assert_eq!(m.state_bytes(), 3);
    }

    #[test]
    fn free_variables_and_initial_state_count() {
        let m = sample_model();
        assert_eq!(m.free_var_count(), 1);
        assert_eq!(m.initial_state_count(), 4);
    }

    #[test]
    fn transition_read_write_sets() {
        let m = sample_model();
        let t = &m.transitions[0];
        assert_eq!(t.read_vars(), vec!["a"]);
        assert_eq!(t.written_vars(), vec!["b"]);
    }

    #[test]
    fn validate_detects_bad_references() {
        let mut m = sample_model();
        m.validate().expect("valid");
        m.transitions[0].effect[0].0 = "zz".to_owned();
        assert!(m.validate().is_err());
        let mut m2 = sample_model();
        m2.transitions[0].to = LocId(99);
        assert!(m2.validate().is_err());
    }

    #[test]
    fn var_lookup() {
        let m = sample_model();
        assert!(m.var("a").is_some());
        assert!(m.var("nope").is_none());
        assert_eq!(m.var("a").map(|v| v.domain_size()), Some(4));
    }
}
