//! Process-wide checker counters for the service `stats` snapshot.
//!
//! Perf work on the checker needs to stay observable from the outside: the
//! `tmg-service/v1` `stats` op (and `reproduce -- sweep --stats`) embeds a
//! snapshot of these counters in its `tmg-tier-stats/v1` payload, so an
//! operator can see how much the cone-of-influence reduction and the sharded
//! explorer are actually doing without attaching a profiler.
//!
//! The counters are monotone process-wide atomics (relaxed ordering; they are
//! statistics, not synchronisation) updated by [`crate::opt`] slicing and the
//! [`crate::multiquery`] explorer.

use std::sync::atomic::{AtomicU64, Ordering};

/// One process-wide monotone counter.
macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident => $json:literal),+ $(,)?) => {
        $( $(#[$doc])* static $name: AtomicU64 = AtomicU64::new(0); )+

        /// Registers every counter, by its JSON name and in declaration
        /// order, into the unified metrics registry (group `"checker"`).
        /// Idempotent; [`snapshot`] calls it, so any stats consumer sees
        /// the group registered.
        pub fn register() {
            tmg_obs::registry().register_counters(
                "checker",
                None,
                vec![$( ($json, &$name), )+],
            );
        }

        /// A point-in-time copy of every checker counter.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        #[allow(non_snake_case)]
        pub struct CheckerMetrics {
            $( $(#[$doc])* pub $name: u64, )+
        }

        /// Reads every counter (relaxed; values are monotone but not
        /// mutually consistent to the cycle).
        pub fn snapshot() -> CheckerMetrics {
            register();
            CheckerMetrics {
                $( $name: $name.load(Ordering::Relaxed), )+
            }
        }

        impl CheckerMetrics {
            /// Renders the snapshot as a hand-written JSON object (the
            /// vendored serde is derive-markers only).
            pub fn to_json(&self) -> String {
                let mut out = String::from("{ ");
                let mut first = true;
                $(
                    if !first { out.push_str(", "); }
                    first = false;
                    out.push_str(&format!("\"{}\": {}", $json, self.$name));
                )+
                let _ = first;
                out.push_str(" }");
                out
            }
        }
    };
}

counters! {
    /// States popped by shared (multi-query) explorations.
    STATES_EXPLORED => "states_explored",
    /// Shared explorations that ran on a cone-of-influence slice.
    SLICED_BATCHES => "sliced_batches",
    /// Shared explorations whose batch cone kept the whole function
    /// (slicing was the identity and the cached full model was reused).
    SLICE_IDENTITY_BATCHES => "slice_identity_batches",
    /// Statements removed by slicing, summed over sliced batches.
    STATES_SLICED_STMTS => "sliced_away_stmts",
    /// State variables (domain dimensions) removed by slicing, summed over
    /// sliced batches.
    STATES_SLICED_VARS => "sliced_away_vars",
    /// Sliced witnesses successfully completed against the full model.
    WITNESSES_RECONSTRUCTED => "witnesses_reconstructed",
    /// Shards executed by the parallel explorer.
    SHARDS_EXPLORED => "shards_explored",
    /// Shards skipped because every query was already settled by an earlier
    /// (lexicographically smaller) finished shard.
    SHARDS_SKIPPED => "shards_skipped",
    /// Entries inserted into the sharded visited table.
    VISITED_INSERTIONS => "visited_insertions",
    /// Revisits pruned through the sharded visited table.
    VISITED_HITS => "visited_hits",
    /// Lock acquisitions on a visited-table stripe that another shard was
    /// holding (contention indicator).
    VISITED_SHARD_COLLISIONS => "shard_collisions",
}

macro_rules! bump_fns {
    ($($fn_name:ident => $name:ident),+ $(,)?) => {
        $(
            /// Adds `n` to the counter (relaxed).
            pub fn $fn_name(n: u64) {
                if n > 0 {
                    $name.fetch_add(n, Ordering::Relaxed);
                }
            }
        )+
    };
}

bump_fns! {
    add_states_explored => STATES_EXPLORED,
    add_sliced_batches => SLICED_BATCHES,
    add_slice_identity_batches => SLICE_IDENTITY_BATCHES,
    add_sliced_stmts => STATES_SLICED_STMTS,
    add_sliced_vars => STATES_SLICED_VARS,
    add_witnesses_reconstructed => WITNESSES_RECONSTRUCTED,
    add_shards_explored => SHARDS_EXPLORED,
    add_shards_skipped => SHARDS_SKIPPED,
    add_visited_insertions => VISITED_INSERTIONS,
    add_visited_hits => VISITED_HITS,
    add_visited_collisions => VISITED_SHARD_COLLISIONS,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_registry_group_matches_the_struct_renderer() {
        register();
        let registry_json = tmg_obs::registry()
            .group_json("checker")
            .expect("checker group registered");
        let struct_json = snapshot().to_json();
        // Same keys in the same order; values may differ only by counter
        // bumps racing between the two reads, so compare the key skeleton.
        let keys = |json: &str| -> Vec<String> {
            json.split('"')
                .skip(1)
                .step_by(2)
                .map(str::to_owned)
                .collect()
        };
        assert_eq!(keys(&registry_json), keys(&struct_json));
    }

    #[test]
    fn snapshot_is_monotone_and_renders_json() {
        let before = snapshot();
        add_states_explored(3);
        add_sliced_batches(1);
        add_visited_collisions(2);
        let after = snapshot();
        assert!(after.STATES_EXPLORED >= before.STATES_EXPLORED + 3);
        assert!(after.SLICED_BATCHES > before.SLICED_BATCHES);
        let json = after.to_json();
        assert!(json.contains("\"states_explored\":"));
        assert!(json.contains("\"sliced_away_vars\":"));
        assert!(json.contains("\"shard_collisions\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
