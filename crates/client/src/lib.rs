//! `tmg-client`: a resilient TCP client for the `tmg-service/v1` protocol.
//!
//! The service contract is "never a wrong answer, only declined or slow":
//! a request is either answered correctly, declined with a typed error
//! (`overloaded` + `retry_after_ms`, `cancelled`, `fault`), or the
//! connection fails.  This crate turns that contract into a callable API
//! that survives the failure half:
//!
//! * **Reconnection + retry** — transport failures (refused connects,
//!   resets, EOF mid-response, torn frames) are retried against a possibly
//!   restarted server with capped-exponential backoff and deterministic
//!   per-request jitter.
//! * **Backpressure compliance** — `overloaded` declines are retried after
//!   the server's own (already jittered) `retry_after_ms` hint.
//! * **Deadline-aware budgets** — a per-request deadline bounds the total
//!   time spent across every attempt and backoff sleep; the budget is
//!   checked *before* each sleep, so the client never oversleeps its
//!   deadline just to learn it expired.
//! * **Hedging** — optionally, a request that has not answered within a
//!   latency threshold is resubmitted on a second connection; the first
//!   response wins.  Server-side in-flight dedup makes the hedge nearly
//!   free.
//! * **Idempotent resubmission** — a retried or hedged request is
//!   byte-identical to the original (same `id`, same body), so the
//!   deterministic pipeline plus the artifact cache answer it
//!   bit-identically.  The client *checks* this: every successful response
//!   is recorded under its request body, and a mismatch surfaces as
//!   [`ClientError::WrongAnswer`] instead of being silently accepted.
//! * **Duplicate suppression** — responses are matched to requests by
//!   `id`; a duplicated delivery (e.g. the `dup_delivery` wire fault) is
//!   dropped and counted, never surfaced twice.
//!
//! See `crates/client/README.md` for the full retry/hedging/idempotency
//! contract.

use rustc_hash::FxHashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tmg_service::json::{self, Value};

/// How often a blocked read re-checks the deadline budget (and, once, the
/// hedge threshold).
const READ_POLL: Duration = Duration::from_millis(25);

/// Retry, backoff, deadline and hedging policy of a [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// First-retry backoff for transport failures (the exponential base).
    pub base_backoff_ms: u64,
    /// Backoff cap; the exponential never sleeps longer than this.
    pub max_backoff_ms: u64,
    /// Total attempts per request (the first try included).
    pub max_attempts: u32,
    /// Wall-clock budget per request across every attempt and sleep.
    /// `None` keeps retrying until `max_attempts` alone stops it.
    pub deadline_ms: Option<u64>,
    /// Resubmit on a second connection when no response has arrived
    /// within this many milliseconds.  `None` disables hedging.
    pub hedge_after_ms: Option<u64>,
    /// TCP connect timeout.
    pub connect_timeout_ms: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            base_backoff_ms: 10,
            max_backoff_ms: 2_000,
            max_attempts: 8,
            deadline_ms: None,
            hedge_after_ms: None,
            connect_timeout_ms: 1_000,
        }
    }
}

/// Why a request ultimately failed.  Transport failures and `overloaded`
/// declines are retried internally and only surface here once the attempt
/// or deadline budget is spent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The server declined with `cancelled` (its deadline expired).
    Cancelled,
    /// The server answered a typed `fault` — deterministic, not retried.
    Fault(String),
    /// Every attempt failed; carries the attempt count and the last
    /// failure's description.
    BudgetExhausted { attempts: u32, last: String },
    /// The deadline budget expired before an answer arrived.
    DeadlineExceeded { attempts: u32 },
    /// A retried or repeated request was answered with a *different* body
    /// than its first answer — the one failure the service contract says
    /// must never happen.
    WrongAnswer { expected: String, got: String },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Cancelled => write!(f, "request cancelled by server deadline"),
            ClientError::Fault(msg) => write!(f, "server fault: {msg}"),
            ClientError::BudgetExhausted { attempts, last } => {
                write!(
                    f,
                    "retry budget exhausted after {attempts} attempts: {last}"
                )
            }
            ClientError::DeadlineExceeded { attempts } => {
                write!(f, "deadline exceeded after {attempts} attempts")
            }
            ClientError::WrongAnswer { expected, got } => {
                write!(
                    f,
                    "non-identical answer for identical request: {expected} != {got}"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A successful response.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request id the response answered.
    pub id: u64,
    /// The raw response line (no trailing newline).
    pub raw: String,
}

impl Response {
    /// Parses the response line.
    ///
    /// # Panics
    ///
    /// Never for a [`Response`] produced by this crate — the line was
    /// parsed once already to classify it.
    pub fn value(&self) -> Value {
        json::parse(&self.raw).expect("validated response line")
    }

    /// The response body with the `id` member stripped: what must be
    /// bit-identical between a request and its retried duplicate.
    pub fn normalized(&self) -> String {
        normalize(&self.raw)
    }
}

/// Counters of everything the client absorbed so the caller didn't have to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Logical requests issued through [`Client::request`].
    pub requests: u64,
    /// Extra attempts beyond each request's first.
    pub retries: u64,
    /// Fresh TCP connections opened (the first one included).
    pub connects: u64,
    /// Hedge submissions fired.
    pub hedges: u64,
    /// Duplicate or stale response lines dropped.
    pub duplicates_dropped: u64,
    /// Torn (newline-less) frames discarded.
    pub torn_frames: u64,
    /// `overloaded` declines absorbed (each slept out the server's hint).
    pub overloaded_retries: u64,
}

#[derive(Default)]
struct StatCells {
    requests: AtomicU64,
    retries: AtomicU64,
    connects: AtomicU64,
    hedges: AtomicU64,
    duplicates_dropped: AtomicU64,
    torn_frames: AtomicU64,
    overloaded_retries: AtomicU64,
}

/// One open connection: the write half, a buffered reader over a clone of
/// the same socket, and the partial line carried across read-timeout
/// polls (a frame can arrive split across poll windows; dropping the
/// prefix would lose the response forever).
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    partial: String,
}

/// How a single attempt failed in a way worth retrying.
enum Transient {
    /// Connect/write/read failure, EOF, torn frame, or unparseable line.
    Transport(String),
    /// A typed `overloaded` decline with the server's backoff hint.
    Overloaded { retry_after_ms: u64 },
}

impl Transient {
    fn describe(&self) -> String {
        match self {
            Transient::Transport(msg) => msg.clone(),
            Transient::Overloaded { retry_after_ms } => {
                format!("overloaded (retry_after_ms {retry_after_ms})")
            }
        }
    }
}

/// A reconnecting `tmg-service/v1` client.  One request is in flight at a
/// time (plus its hedge); the connection is reused across requests and
/// transparently reopened after any failure.
pub struct Client {
    addr: Mutex<SocketAddr>,
    config: ClientConfig,
    next_id: AtomicU64,
    conn: Mutex<Option<Conn>>,
    /// Request body → first successful normalized response, backing the
    /// bit-identical-answer check.
    answers: Mutex<FxHashMap<String, String>>,
    stats: StatCells,
}

impl Client {
    /// A client for the server at `addr` with `config`.  Nothing is
    /// connected until the first request.
    pub fn new(addr: SocketAddr, config: ClientConfig) -> Client {
        Client {
            addr: Mutex::new(addr),
            config,
            next_id: AtomicU64::new(1),
            conn: Mutex::new(None),
            answers: Mutex::new(FxHashMap::default()),
            stats: StatCells::default(),
        }
    }

    /// Repoints the client (e.g. at a restarted server on a new port).
    /// The next attempt — including the retries of a request already in
    /// flight — connects to the new address.
    pub fn set_addr(&self, addr: SocketAddr) {
        *self.addr.lock().expect("addr") = addr;
        // Drop the stale connection so the next attempt reconnects.
        *self.conn.lock().expect("conn") = None;
    }

    /// The current server address.
    pub fn addr(&self) -> SocketAddr {
        *self.addr.lock().expect("addr")
    }

    /// A snapshot of the resilience counters.
    pub fn stats(&self) -> ClientStats {
        ClientStats {
            requests: self.stats.requests.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            connects: self.stats.connects.load(Ordering::Relaxed),
            hedges: self.stats.hedges.load(Ordering::Relaxed),
            duplicates_dropped: self.stats.duplicates_dropped.load(Ordering::Relaxed),
            torn_frames: self.stats.torn_frames.load(Ordering::Relaxed),
            overloaded_retries: self.stats.overloaded_retries.load(Ordering::Relaxed),
        }
    }

    /// Issues one request and drives it to a final answer or a typed
    /// error.  `body` is the request object's members *without* the
    /// surrounding braces or an `id` (e.g.
    /// `"op": "analyse", "source": "...", "path_bound": 2`); the client
    /// assigns the id and reuses it verbatim on every retry and hedge, so
    /// resubmission is idempotent end to end.
    ///
    /// # Errors
    ///
    /// [`ClientError`] — terminal server declines (`cancelled`, `fault`),
    /// an exhausted retry or deadline budget, or a non-identical answer
    /// for a repeated request.
    pub fn request(&self, body: &str) -> Result<Response, ClientError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let line = format!("{{\"id\": {id}, {body}}}\n");
        let started = Instant::now();
        let deadline = self
            .config
            .deadline_ms
            .map(|ms| started + Duration::from_millis(ms));
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            if attempt > 1 {
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
            }
            let transient = match self.exchange(id, &line, deadline) {
                Ok(raw) => match self.classify(body, Response { id, raw }) {
                    Ok(response) => return Ok(response),
                    Err(Retryable::Transient(t)) => t,
                    Err(Retryable::Terminal(e)) => return Err(e),
                },
                Err(AttemptFailure::DeadlineExceeded) => {
                    return Err(ClientError::DeadlineExceeded { attempts: attempt })
                }
                Err(AttemptFailure::Transient(t)) => t,
            };
            if attempt >= self.config.max_attempts {
                return Err(ClientError::BudgetExhausted {
                    attempts: attempt,
                    last: transient.describe(),
                });
            }
            let delay = match &transient {
                Transient::Overloaded { retry_after_ms } => {
                    self.stats
                        .overloaded_retries
                        .fetch_add(1, Ordering::Relaxed);
                    (*retry_after_ms).max(1)
                }
                Transient::Transport(_) => backoff_ms(
                    self.config.base_backoff_ms,
                    self.config.max_backoff_ms,
                    attempt,
                    id,
                ),
            };
            // Budget check before the sleep: sleeping into a dead deadline
            // helps nobody.
            if let Some(deadline) = deadline {
                if Instant::now() + Duration::from_millis(delay) >= deadline {
                    return Err(ClientError::DeadlineExceeded { attempts: attempt });
                }
            }
            std::thread::sleep(Duration::from_millis(delay));
        }
    }

    /// One attempt: write the request line, read matching-response lines
    /// until `id` answers, hedging onto a second connection after the
    /// configured threshold.  Any transport failure tears the connection
    /// down so the next attempt reconnects.
    fn exchange(
        &self,
        id: u64,
        line: &str,
        deadline: Option<Instant>,
    ) -> Result<String, AttemptFailure> {
        let mut primary = match self.take_conn() {
            Ok(conn) => conn,
            Err(e) => return Err(AttemptFailure::Transient(Transient::Transport(e))),
        };
        if let Err(e) = primary.stream.write_all(line.as_bytes()) {
            return Err(AttemptFailure::Transient(Transient::Transport(format!(
                "write failed: {e}"
            ))));
        }
        let mut conns = vec![primary];
        let mut hedged = false;
        let begun = Instant::now();
        loop {
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    return Err(AttemptFailure::DeadlineExceeded);
                }
            }
            // Until the hedge fires, the poll window is clipped to the
            // hedge threshold — a hedge configured at 1 ms must not wait
            // out a full 25 ms poll before triggering.
            let poll = match self.config.hedge_after_ms {
                Some(hedge_after) if !hedged => {
                    READ_POLL.min(Duration::from_millis(hedge_after.max(1)))
                }
                _ => READ_POLL,
            };
            let mut i = 0;
            while i < conns.len() {
                match read_one(&mut conns[i], id, poll, &self.stats) {
                    ReadOutcome::Answer(raw) => {
                        // The winner becomes the reusable connection; any
                        // hedge loser is dropped (its duplicate answer
                        // dies with the socket).
                        let winner = conns.swap_remove(i);
                        if conns.is_empty() {
                            *self.conn.lock().expect("conn") = Some(winner);
                        }
                        return Ok(raw);
                    }
                    ReadOutcome::Dead(why) => {
                        conns.remove(i);
                        if conns.is_empty() {
                            return Err(AttemptFailure::Transient(Transient::Transport(why)));
                        }
                    }
                    ReadOutcome::Timeout | ReadOutcome::Skipped => i += 1,
                }
            }
            if !hedged {
                if let Some(hedge_after) = self.config.hedge_after_ms {
                    if begun.elapsed() >= Duration::from_millis(hedge_after) {
                        hedged = true;
                        if let Ok(mut hedge) = self.open() {
                            if hedge.stream.write_all(line.as_bytes()).is_ok() {
                                self.stats.hedges.fetch_add(1, Ordering::Relaxed);
                                conns.push(hedge);
                            }
                        }
                        // A failed hedge is not an attempt failure — the
                        // primary is still in flight.
                    }
                }
            }
        }
    }

    /// Sorts a complete response line into a final answer, a terminal
    /// error, or a retryable decline — and enforces the bit-identical
    /// answer contract for repeated requests.
    fn classify(&self, body: &str, response: Response) -> Result<Response, Retryable> {
        let parsed = match json::parse(&response.raw) {
            Ok(parsed) => parsed,
            Err(e) => {
                return Err(Retryable::Transient(Transient::Transport(format!(
                    "unparseable response: {e:?}"
                ))))
            }
        };
        if parsed.get("ok").and_then(Value::as_bool) == Some(true) {
            let normalized = response.normalized();
            let mut answers = self.answers.lock().expect("answers");
            if let Some(previous) = answers.get(body) {
                if *previous != normalized {
                    return Err(Retryable::Terminal(ClientError::WrongAnswer {
                        expected: previous.clone(),
                        got: normalized,
                    }));
                }
            } else {
                answers.insert(body.to_owned(), normalized);
            }
            return Ok(response);
        }
        match parsed.get("error_kind").and_then(Value::as_str) {
            Some("overloaded") => Err(Retryable::Transient(Transient::Overloaded {
                retry_after_ms: parsed
                    .get("retry_after_ms")
                    .and_then(Value::as_u64)
                    .unwrap_or(50),
            })),
            Some("cancelled") => Err(Retryable::Terminal(ClientError::Cancelled)),
            Some(kind) => Err(Retryable::Terminal(ClientError::Fault(format!(
                "{kind}: {}",
                parsed.get("error").and_then(Value::as_str).unwrap_or("")
            )))),
            None => Err(Retryable::Terminal(ClientError::Fault(format!(
                "untyped failure: {}",
                response.raw
            )))),
        }
    }

    /// The pooled connection, or a fresh one.
    fn take_conn(&self) -> Result<Conn, String> {
        if let Some(conn) = self.conn.lock().expect("conn").take() {
            return Ok(conn);
        }
        self.open().map_err(|e| format!("connect failed: {e}"))
    }

    fn open(&self) -> std::io::Result<Conn> {
        let addr = self.addr();
        let stream = TcpStream::connect_timeout(
            &addr,
            Duration::from_millis(self.config.connect_timeout_ms),
        )?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        self.stats.connects.fetch_add(1, Ordering::Relaxed);
        Ok(Conn {
            stream,
            reader,
            partial: String::new(),
        })
    }
}

/// How one poll of one connection went.
enum ReadOutcome {
    /// The matching response line.
    Answer(String),
    /// Connection unusable (EOF, reset, torn frame); `why` says how.
    Dead(String),
    /// Nothing arrived within the poll window.
    Timeout,
    /// A stale or duplicate line was dropped; poll again immediately.
    Skipped,
}

enum Retryable {
    Transient(Transient),
    Terminal(ClientError),
}

enum AttemptFailure {
    Transient(Transient),
    DeadlineExceeded,
}

/// Polls one connection for the response to `id`.  Frames are validated
/// structurally: a line without its newline at EOF is a torn frame (the
/// connection died mid-write and cannot be trusted further), and a
/// well-formed line with the wrong id is a duplicate or stale delivery,
/// dropped and counted.  A frame split across poll windows accumulates in
/// `conn.partial` until its newline arrives.
fn read_one(conn: &mut Conn, id: u64, poll: Duration, stats: &StatCells) -> ReadOutcome {
    let _ = conn.stream.set_read_timeout(Some(poll));
    match conn.reader.read_line(&mut conn.partial) {
        Ok(0) if conn.partial.is_empty() => {
            ReadOutcome::Dead("connection closed before the response".to_owned())
        }
        Ok(_) => {
            if !conn.partial.ends_with('\n') {
                // EOF after a prefix: the write was torn mid-frame.
                stats.torn_frames.fetch_add(1, Ordering::Relaxed);
                return ReadOutcome::Dead(format!("torn frame ({} bytes)", conn.partial.len()));
            }
            let line = std::mem::take(&mut conn.partial);
            let trimmed = line.trim_end_matches('\n');
            match json::parse(trimmed) {
                Ok(parsed) if parsed.get("id").and_then(Value::as_u64) == Some(id) => {
                    ReadOutcome::Answer(trimmed.to_owned())
                }
                Ok(_) => {
                    stats.duplicates_dropped.fetch_add(1, Ordering::Relaxed);
                    ReadOutcome::Skipped
                }
                Err(e) => ReadOutcome::Dead(format!("unparseable frame: {e:?}")),
            }
        }
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            // Whatever arrived before the timeout is kept in
            // `conn.partial`; nothing is lost — poll again.
            ReadOutcome::Timeout
        }
        Err(e) => ReadOutcome::Dead(format!("read failed: {e}")),
    }
}

/// 64-bit FNV-1a, for deterministic backoff jitter.
fn fnv1a(value: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in value.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Capped-exponential backoff with deterministic jitter: attempt `n`
/// (1-based) sleeps in `[exp/2, exp)` where `exp = min(base << (n-1),
/// cap)`, jittered by the request id so a burst of failed clients does
/// not reconnect in lockstep.  Pure and clock-free: the same (attempt,
/// id) always sleeps the same time.
pub fn backoff_ms(base_ms: u64, cap_ms: u64, attempt: u32, id: u64) -> u64 {
    let base = base_ms.max(1);
    let exp = base
        .checked_shl(attempt.saturating_sub(1).min(16))
        .unwrap_or(cap_ms)
        .min(cap_ms.max(base));
    let half = (exp / 2).max(1);
    half + fnv1a(id.wrapping_mul(31).wrapping_add(u64::from(attempt))) % half
}

/// Strips the `"id": N, ` prefix from a response line: the part that must
/// be bit-identical between duplicate answers.
pub fn normalize(line: &str) -> String {
    let rest = line.strip_prefix("{\"id\": ").unwrap_or(line);
    match rest.find(", ") {
        Some(comma) => format!("{{{}", &rest[comma + 2..]),
        None => line.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::Arc;
    use tmg_service::store::{PersistentStore, PersistentStoreConfig};
    use tmg_service::{FaultKind, FaultPlan, Server};

    fn temp_root(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tmg-client-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open_store(root: &std::path::Path) -> Arc<PersistentStore> {
        Arc::new(PersistentStore::with_config(PersistentStoreConfig::new(root)).expect("open"))
    }

    const SOURCE: &str = "void f(char a __range(0, 3)) { if (a > 1) { x(); } else { y(); } }";

    fn analyse_body() -> String {
        format!(
            "\"op\": \"analyse\", \"source\": \"{}\", \"path_bound\": 2, \"trace_id\": 1",
            tmg_service::json::escape(SOURCE)
        )
    }

    #[test]
    fn backoff_is_deterministic_capped_and_spread() {
        // Same inputs, same sleep.
        assert_eq!(backoff_ms(10, 2000, 1, 7), backoff_ms(10, 2000, 1, 7));
        // Different ids de-synchronize.
        let spread: std::collections::BTreeSet<u64> =
            (0..16).map(|id| backoff_ms(10, 2000, 3, id)).collect();
        assert!(spread.len() > 1, "jitter must spread ids: {spread:?}");
        // The cap holds for absurd attempts.
        for attempt in 1..64 {
            assert!(backoff_ms(10, 2000, attempt, 3) < 2000);
        }
        // Exponential growth until the cap: window lower bound doubles.
        assert!(backoff_ms(100, 100_000, 4, 0) >= 400);
        assert!(backoff_ms(100, 100_000, 1, 0) < 100);
    }

    #[test]
    fn normalize_strips_only_the_id() {
        assert_eq!(
            normalize("{\"id\": 42, \"ok\": true, \"bound\": 7}"),
            "{\"ok\": true, \"bound\": 7}"
        );
        assert_eq!(
            normalize("{\"id\": 1, \"ok\": true}"),
            normalize("{\"id\": 999, \"ok\": true}")
        );
    }

    /// Serves a TCP session in a scoped thread while `with` drives it,
    /// then returns what `with` produced.  The shutdown that lets the
    /// server thread join is sent even when `with` panics — otherwise a
    /// failing assertion would hang the test instead of reporting.
    fn with_server<T>(server: &Server, with: impl FnOnce(SocketAddr) -> T + Send) -> T
    where
        T: Send,
    {
        use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|scope| {
            scope.spawn(|| server.serve_tcp(listener).expect("serve_tcp"));
            let result = catch_unwind(AssertUnwindSafe(|| with(addr)));
            // End the session so the server thread joins.
            let client = Client::new(addr, ClientConfig::default());
            let _ = client.request("\"op\": \"shutdown\"");
            match result {
                Ok(value) => value,
                Err(panic) => resume_unwind(panic),
            }
        })
    }

    #[test]
    fn a_request_round_trips_and_repeats_bit_identically() {
        let root = temp_root("roundtrip");
        let server = Server::new(open_store(&root)).with_workers(2);
        with_server(&server, |addr| {
            let client = Client::new(addr, ClientConfig::default());
            let first = client.request(&analyse_body()).expect("first analyse");
            let second = client.request(&analyse_body()).expect("second analyse");
            assert_eq!(
                first.normalized(),
                second.normalized(),
                "identical requests must be answered bit-identically"
            );
            assert_ne!(first.id, second.id);
            let stats = client.stats();
            assert_eq!(stats.requests, 2);
            assert_eq!(stats.retries, 0);
            assert_eq!(stats.connects, 1, "the connection is reused");
        });
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn wire_faults_are_absorbed_and_answers_stay_identical() {
        let root = temp_root("wire");
        let plan = FaultPlan::none()
            .with(FaultKind::ConnDrop, 1)
            .with(FaultKind::TornFrame, 1)
            .with(FaultKind::DupDelivery, 1)
            .with(FaultKind::StallMs, 1);
        let server = Server::new(open_store(&root))
            .with_workers(2)
            .with_wire_faults(plan);
        with_server(&server, |addr| {
            let client = Client::new(addr, ClientConfig::default());
            // Six identical requests ride through one conn_drop, one torn
            // frame, one duplicated delivery and one stall — every answer
            // must land and be bit-identical.
            let mut normalized = Vec::new();
            for _ in 0..6 {
                normalized.push(
                    client
                        .request(&analyse_body())
                        .expect("analyse")
                        .normalized(),
                );
            }
            assert!(normalized.windows(2).all(|w| w[0] == w[1]));
            let stats = client.stats();
            assert!(stats.retries >= 2, "drop + torn frame retried: {stats:?}");
            assert!(stats.torn_frames >= 1, "{stats:?}");
            assert!(stats.connects >= 3, "each dead conn reopened: {stats:?}");
            assert_eq!(stats.duplicates_dropped, 1, "{stats:?}");
        });
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn overloaded_declines_exhaust_the_attempt_budget_typed() {
        let root = temp_root("overloaded");
        // Capacity 0: everything is shed; the client must honour the
        // hints, retry, and finally report a typed budget error.
        let server = Server::new(open_store(&root))
            .with_workers(1)
            .with_queue_capacity(0);
        with_server(&server, |addr| {
            let client = Client::new(
                addr,
                ClientConfig {
                    max_attempts: 3,
                    ..ClientConfig::default()
                },
            );
            match client.request(&analyse_body()) {
                Err(ClientError::BudgetExhausted { attempts, last }) => {
                    assert_eq!(attempts, 3);
                    assert!(last.contains("overloaded"), "{last}");
                }
                other => panic!("expected BudgetExhausted, got {other:?}"),
            }
            assert_eq!(client.stats().overloaded_retries, 2);
        });
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn a_deadline_budget_bounds_the_whole_retry_loop() {
        // Nothing listens on this port: every attempt fails to connect,
        // and the deadline must stop the loop long before 100 attempts.
        let unreachable: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        let client = Client::new(
            unreachable,
            ClientConfig {
                max_attempts: 100,
                base_backoff_ms: 20,
                deadline_ms: Some(120),
                ..ClientConfig::default()
            },
        );
        let started = Instant::now();
        match client.request("\"op\": \"stats\"") {
            Err(ClientError::DeadlineExceeded { attempts }) => {
                assert!(attempts < 100, "the deadline, not the attempt cap, fired");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the budget bounds wall-clock time"
        );
    }

    #[test]
    fn a_slow_request_is_hedged_and_answered_once() {
        let root = temp_root("hedge");
        // A one-shot stall on the first response delivery keeps the race
        // deterministic: however fast the compute, the primary answer
        // cannot land before the hedge threshold has provably elapsed.
        let server = Server::new(open_store(&root))
            .with_workers(2)
            .with_wire_faults(FaultPlan::parse("stall_ms:1").expect("plan"));
        with_server(&server, |addr| {
            let client = Client::new(
                addr,
                ClientConfig {
                    // Far below the injected 25 ms stall: the hedge always
                    // fires, and the unstalled hedge delivery wins.
                    hedge_after_ms: Some(1),
                    ..ClientConfig::default()
                },
            );
            let body = format!(
                "\"op\": \"sweep\", \"source\": \"{}\", \"max_bound\": 60, \"trace_id\": 1",
                tmg_service::json::escape(SOURCE)
            );
            let response = client.request(&body).expect("hedged sweep");
            assert_eq!(
                response.value().get("ok").and_then(Value::as_bool),
                Some(true)
            );
            let stats = client.stats();
            assert_eq!(stats.hedges, 1, "{stats:?}");
            assert_eq!(stats.requests, 1);
        });
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn server_faults_are_terminal_not_retried() {
        let root = temp_root("fault");
        let server = Server::new(open_store(&root)).with_workers(1);
        with_server(&server, |addr| {
            let client = Client::new(addr, ClientConfig::default());
            match client.request("\"op\": \"analyse\", \"source\": \"not c\", \"path_bound\": 2") {
                Err(ClientError::Fault(_)) => {}
                other => panic!("expected Fault, got {other:?}"),
            }
            assert_eq!(client.stats().retries, 0, "faults are deterministic");
        });
        let _ = std::fs::remove_dir_all(&root);
    }
}
