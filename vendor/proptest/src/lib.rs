//! Vendored stand-in for the subset of `proptest` this workspace uses
//! (no crates.io access in the build environment).
//!
//! Supports the `proptest! { #![proptest_config(..)] #[test] fn f(x in LO..HI)
//! {..} }` form with integer-range strategies, sampled deterministically from
//! a fixed seed so failures replay.  `prop_assert!`/`prop_assert_eq!` report
//! the failing case before panicking.  Shrinking is not implemented.

#[doc(hidden)]
pub use rand as __rand;

/// Configuration accepted via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

pub mod strategy {
    //! Value-generation strategies (integer ranges only).

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Draws one value.
        fn pick(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);
}

pub mod prelude {
    //! Everything the `proptest!` call sites need in scope.
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Deterministic per-test RNG seed (mixed with the test name's bytes so
/// different tests see different streams).
#[doc(hidden)]
pub fn __seed_for(test_name: &str) -> u64 {
    let mut seed = 0xB10C_5EED_u64;
    for b in test_name.bytes() {
        seed = seed.rotate_left(7) ^ u64::from(b);
    }
    seed
}

/// Assertion that names the failing random case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion that names the failing random case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng: $crate::__rand::rngs::StdRng =
                    $crate::__rand::SeedableRng::seed_from_u64($crate::__seed_for(stringify!($name)));
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::pick(&($strategy), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// The `proptest!` test-block macro (integer-range strategies only).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_are_respected(a in 0i64..10, b in -5i64..5) {
            prop_assert!((0..10).contains(&a));
            prop_assert!((-5..5).contains(&b));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..4) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(crate::__seed_for("a"), crate::__seed_for("b"));
        assert_eq!(crate::__seed_for("a"), crate::__seed_for("a"));
    }
}
