//! Vendored stand-in for the subset of `rayon` this workspace uses
//! (no crates.io access in the build environment).
//!
//! Supports order-preserving `par_iter().map(..).collect::<Vec<_>>()` chains
//! (plus `enumerate`) over slices, executed on a **persistent worker pool**
//! (one thread per core, started lazily) so that fine-grained fan-outs — a
//! genetic-search generation of microsecond-sized target runs — do not pay
//! thread-spawn latency per call.  Work is split into more chunks than
//! workers and pulled from a shared queue, giving coarse load balancing;
//! chunk results are written into their own slots, so a parallel collect is
//! always byte-identical to its sequential counterpart.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex, OnceLock};

pub mod prelude {
    //! The traits required for `par_iter` call syntax.
    pub use crate::{FromParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// A type-erased, lifetime-erased job.  Safety: `run_jobs` never returns
/// before every submitted job has finished, so the `'static` lie cannot be
/// observed.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    sender: Mutex<mpsc::Sender<Job>>,
    workers: usize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = std::sync::Arc::new(Mutex::new(receiver));
        for i in 0..workers {
            let receiver = std::sync::Arc::clone(&receiver);
            std::thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || loop {
                    let job = {
                        let guard = receiver.lock().expect("pool queue poisoned");
                        guard.recv()
                    };
                    match job {
                        Ok(job) => job(),
                        Err(_) => break, // channel closed: process exit
                    }
                })
                .expect("spawn pool worker");
        }
        Pool {
            sender: Mutex::new(sender),
            workers,
        }
    })
}

/// Tracks outstanding jobs of one `run_jobs` call.
struct Completion {
    done: AtomicUsize,
    panicked: AtomicUsize,
    mutex: Mutex<()>,
    condvar: Condvar,
}

/// Runs the given borrowed jobs on the pool and blocks until all complete.
///
/// # Panics
///
/// Propagates (as a panic) if any job panicked.
fn run_jobs<'env>(jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
    let total = jobs.len();
    if total == 0 {
        return;
    }
    let completion = std::sync::Arc::new(Completion {
        done: AtomicUsize::new(0),
        panicked: AtomicUsize::new(0),
        mutex: Mutex::new(()),
        condvar: Condvar::new(),
    });
    {
        let sender = pool().sender.lock().expect("pool sender poisoned");
        for job in jobs {
            let completion = std::sync::Arc::clone(&completion);
            let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    completion.panicked.fetch_add(1, Ordering::SeqCst);
                }
                let _guard = completion.mutex.lock().expect("completion poisoned");
                completion.done.fetch_add(1, Ordering::SeqCst);
                completion.condvar.notify_all();
            });
            // SAFETY: this function does not return until `done == total`,
            // so no job (or anything it borrows) outlives the caller frame.
            let wrapped: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(wrapped) };
            sender.send(wrapped).expect("pool workers alive");
        }
    }
    let mut guard = completion.mutex.lock().expect("completion poisoned");
    while completion.done.load(Ordering::SeqCst) < total {
        guard = completion
            .condvar
            .wait(guard)
            .expect("completion wait poisoned");
    }
    drop(guard);
    assert_eq!(
        completion.panicked.load(Ordering::SeqCst),
        0,
        "rayon shim job panicked"
    );
}

/// An indexed parallel computation: `compute(i)` for `i in 0..len()` must be
/// independent side-effect-free work items.
pub trait ParallelIterator: Sync + Sized {
    /// The produced item type.
    type Item: Send;

    /// Number of work items.
    fn len(&self) -> usize;

    /// Whether there are no work items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Computes item `index`.
    fn compute(&self, index: usize) -> Self::Item;

    /// Maps every item through `f` (lazily; work happens at `collect`).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Pairs every item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Runs the chain on the worker pool and collects in input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Borrowing entry point, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Item type yielded by the parallel iterator.
    type Item: Send + 'a;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Creates a parallel iterator borrowing `self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn compute(&self, index: usize) -> &'a T {
        &self.items[index]
    }
}

/// `map` adapter.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn compute(&self, index: usize) -> R {
        (self.f)(self.base.compute(index))
    }
}

/// `enumerate` adapter.
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    fn compute(&self, index: usize) -> (usize, I::Item) {
        (index, self.base.compute(index))
    }
}

/// Order-preserving parallel collection, mirroring
/// `rayon::iter::FromParallelIterator`.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Collects the items of `iter` in input order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Vec<T> {
        let n = iter.len();
        let workers = pool().workers;
        // A collect issued from *inside* a pool job must run inline: parking
        // this worker on the completion condvar while the inner jobs wait in
        // the queue behind it would deadlock the fixed-size pool (real rayon
        // work-steals instead).
        let on_pool_worker = std::thread::current()
            .name()
            .is_some_and(|name| name.starts_with("rayon-shim-"));
        if workers <= 1 || n <= 1 || on_pool_worker {
            return (0..n).map(|i| iter.compute(i)).collect();
        }
        // More chunks than workers for load balancing, but never so many
        // that queueing overhead dominates.
        let chunks = (workers * 4).min(n);
        let chunk_size = n.div_ceil(chunks);
        let chunk_count = n.div_ceil(chunk_size);
        let slots: Vec<Mutex<Vec<T>>> = (0..chunk_count).map(|_| Mutex::new(Vec::new())).collect();
        let iter_ref = &iter;
        let slots_ref = &slots;
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..chunk_count)
            .map(|c| {
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let lo = c * chunk_size;
                    let hi = ((c + 1) * chunk_size).min(n);
                    let out: Vec<T> = (lo..hi).map(|i| iter_ref.compute(i)).collect();
                    *slots_ref[c].lock().expect("slot poisoned") = out;
                });
                job
            })
            .collect();
        run_jobs(jobs);
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            out.extend(slot.into_inner().expect("slot poisoned"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|v| v * 2).collect();
        assert_eq!(doubled, (0..1000).map(|v| v * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn enumerate_indices_match_positions() {
        let input = ["a", "b", "c"];
        let tagged: Vec<(usize, String)> = input
            .par_iter()
            .enumerate()
            .map(|(i, s)| (i, format!("{s}{i}")))
            .collect();
        assert_eq!(
            tagged,
            vec![(0, "a0".into()), (1, "b1".into()), (2, "c2".into())]
        );
    }

    #[test]
    fn empty_input_collects_empty() {
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = input.par_iter().map(|v| *v).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn repeated_small_collects_reuse_the_pool() {
        // Exercises the fine-granularity path the genetic search hits:
        // thousands of tiny fan-outs must complete quickly and correctly.
        for round in 0..2000u64 {
            let input: Vec<u64> = (0..32).map(|i| i + round).collect();
            let out: Vec<u64> = input.par_iter().map(|v| v * 3).collect();
            assert_eq!(out, input.iter().map(|v| v * 3).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn nested_collects_run_inline_instead_of_deadlocking() {
        let outer: Vec<u64> = (0..8).collect();
        let sums: Vec<u64> = outer
            .par_iter()
            .map(|&o| {
                let inner: Vec<u64> = (0..50).collect();
                let mapped: Vec<u64> = inner.par_iter().map(|&i| i + o).collect();
                mapped.iter().sum::<u64>()
            })
            .collect();
        assert_eq!(sums.len(), 8);
        assert_eq!(sums[0], (0..50).sum::<u64>());
    }

    #[test]
    fn borrowed_data_survives_the_collect() {
        let strings: Vec<String> = (0..100).map(|i| format!("value-{i}")).collect();
        let lens: Vec<usize> = strings.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 100);
        assert_eq!(lens[7], "value-7".len());
    }
}
