//! Vendored stand-in for `rustc-hash` (no crates.io access in the build
//! environment).
//!
//! Implements the classic `FxHasher` multiply-rotate word hash used by rustc
//! and re-exports the [`FxHashMap`] / [`FxHashSet`] aliases.  The hot loops
//! of the model checker and the test-data generator key their maps on small
//! integers (`LocId`, `BlockId`, packed state words), which is exactly the
//! workload Fx hashing is fastest on.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc word-at-a-time multiplicative hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((4, 2)));
        assert!(!s.insert((4, 2)));
    }

    #[test]
    fn hashing_is_stable_per_value() {
        use std::hash::BuildHasher;
        let build = FxBuildHasher::default();
        let h = |v: u64| build.hash_one(v);
        assert_eq!(h(77), h(77));
        assert_ne!(h(77), h(78));
    }

    #[test]
    fn unaligned_byte_tails_hash_distinctly() {
        use std::hash::Hasher as _;
        let mut a = FxHasher::default();
        a.write(b"abcdefghi");
        let mut b = FxHasher::default();
        b.write(b"abcdefghj");
        assert_ne!(a.finish(), b.finish());
    }
}
