//! Vendored stand-in for the subset of `rand` 0.8 this workspace uses
//! (no crates.io access in the build environment).
//!
//! Provides [`rngs::StdRng`] (a xoshiro256** generator seeded via splitmix64),
//! the [`Rng`] and [`SeedableRng`] traits, uniform sampling over integer
//! ranges and [`Rng::gen_bool`].  Everything is deterministic for a given
//! seed, which is all the toolchain relies on (the generators and the genetic
//! search are seeded explicitly so whole pipelines replay bit-for-bit).

/// Seeding behaviour, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that uniform values can be drawn for via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniform value from `rng`.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Core entropy source.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, like `rand` does.
    fn sample_from(self, rng: &mut dyn RngCore) -> Self::Output;
}

/// Uniform draw from `[0, span)` by widening multiply (Lemire's method minus
/// the rejection step; the tiny bias is irrelevant for test-data search).
fn uniform_below(rng: &mut dyn RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_below(rng, span) as i64) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_below(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64);

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(uniform_below(rng, span)) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(uniform_below(rng, span + 1)) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32, u64, usize);

/// The user-facing random-value API, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from an integer range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, like rand's `gen_bool`.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Uniform draw of a whole value.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<T: RngCore + Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the concrete algorithm differs
    /// from upstream `StdRng`; only determinism-per-seed matters here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-60..60);
            assert!((-60..60).contains(&v));
            let w = rng.gen_range(3i64..=9);
            assert!((3..=9).contains(&w));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let trues = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&trues), "p=0.5 gave {trues}/1000");
    }

    #[test]
    fn single_value_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(rng.gen_range(4i64..=4), 4);
    }
}
