//! Vendored stand-in for `serde` (no crates.io access in the build
//! environment).
//!
//! The workspace only uses serde as derive markers on its data types; no code
//! path serialises through the serde data model (machine-readable output is
//! written by hand in `tmg-bench`).  The traits are therefore empty markers
//! and the derives (re-exported from the vendored `serde_derive`) expand to
//! nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
