//! Vendored stand-in for the `serde_derive` proc-macro crate.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace performs actual serde serialisation (the reproduce binary writes
//! its JSON by hand).  The derives therefore only need to *exist* so that
//! `#[derive(Serialize, Deserialize)]` attributes on the data types compile;
//! they expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
