//! Vendored stand-in for the subset of `criterion` this workspace uses
//! (no crates.io access in the build environment).
//!
//! Provides [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`] and the
//! `criterion_group!`/`criterion_main!` macros.  Measurement is a simple
//! fixed-budget loop reporting the mean wall time per iteration — adequate
//! for the relative comparisons the benches make, with none of criterion's
//! statistics.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, like criterion's.
pub use std::hint::black_box;

/// Target wall-clock budget per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Hard cap on measured iterations.
const MAX_ITERS: u64 = 1_000;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One warm-up call, then measure until the budget or cap is reached.
        black_box(routine());
        let started = Instant::now();
        while self.total < MEASURE_BUDGET && self.iters < MAX_ITERS {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
            if started.elapsed() > MEASURE_BUDGET * 2 {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("bench {name:<50} (no measurement)");
        } else {
            let mean = self.total / u32::try_from(self.iters).unwrap_or(u32::MAX);
            println!(
                "bench {name:<50} {:>12.3} ms/iter ({} iters)",
                mean.as_secs_f64() * 1e3,
                self.iters
            );
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (a no-op in this shim).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut ran = 0u64;
        Criterion::default().bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_bench_with_input_passes_the_input() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::from_parameter("p"), &41, |b, &v| {
            b.iter(|| {
                seen = v + 1;
            })
        });
        group.finish();
        assert_eq!(seen, 42);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
