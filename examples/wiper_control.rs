//! The paper's Section-4 case study: the 9-state wiper controller.
//!
//! Generates the controller from its statechart, partitions it so that every
//! `switch` arm is one program segment (as the paper does), runs the full
//! pipeline and compares the WCET bound against the exhaustive end-to-end
//! maximum over the complete input space.
//!
//! ```text
//! cargo run -p tmg-core --example wiper_control --release
//! ```

use tmg_cfg::build_cfg;
use tmg_codegen::{wiper_function, wiper_input_space};
use tmg_core::WcetAnalysis;
use tmg_minic::pretty::function_to_string;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let function = wiper_function();
    println!(
        "generated controller ({} statements):\n",
        function.stmt_count()
    );
    let listing = function_to_string(&function);
    for line in listing.lines().take(25) {
        println!("    {line}");
    }
    println!(
        "    ... ({} more lines)\n",
        listing.lines().count().saturating_sub(25)
    );

    // One program segment per `switch` arm: the bound is the largest path
    // count among the case-arm regions.
    let lowered = build_cfg(&function);
    let bound = lowered
        .regions
        .root()
        .children
        .iter()
        .map(|c| lowered.regions.region(*c).path_count)
        .max()
        .unwrap_or(1);
    println!(
        "CFG: {} blocks, path bound b = {bound}",
        lowered.cfg.block_count()
    );

    let space = wiper_input_space();
    let report = WcetAnalysis::new(bound).analyse_with_exhaustive(&function, &space)?;
    println!("{report}");
    println!();
    println!(
        "paper reference point: exhaustive 250 cycles vs bound 274 cycles (pessimism 1.096); ours: {} vs {} ({:.3})",
        report.exhaustive_max.unwrap_or(0),
        report.wcet_bound,
        report.pessimism().unwrap_or(1.0)
    );
    Ok(())
}
