//! The Section-2.3 tradeoff study on a TargetLink-sized generated function:
//! instrumentation points and measurements as a function of the path bound
//! (Figures 2 and 3 of the paper).
//!
//! ```text
//! cargo run -p tmg-core --example automotive_sweep --release
//! TMG_TARGET_BLOCKS=850 cargo run -p tmg-core --example automotive_sweep --release
//! ```

use tmg_cfg::build_cfg;
use tmg_codegen::{generate_automotive, AutomotiveConfig};
use tmg_core::tradeoff::{log_spaced_bounds, sweep_path_bounds};

fn main() {
    let target_blocks = std::env::var("TMG_TARGET_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let config = AutomotiveConfig {
        target_blocks,
        ..AutomotiveConfig::default()
    };
    let generated = generate_automotive(&config);
    println!(
        "generated function: {} basic blocks, {} conditional branches, {} source lines",
        generated.block_count, generated.branch_count, generated.line_count
    );
    println!("(the paper's industrial functions: ~800 blocks, ~300 branches, ~5000 lines)\n");

    let lowered = build_cfg(&generated.function);
    let sweep = sweep_path_bounds(&lowered, &log_spaced_bounds(1_000_000));

    println!("Figure 2 — instrumentation points over path bound (log-scaled b):");
    println!("{:>12} {:>10} {:>12}", "bound b", "ip", "segments");
    for point in &sweep {
        println!(
            "{:>12} {:>10} {:>12}",
            point.path_bound, point.instrumentation_points, point.segments
        );
    }

    println!();
    println!("Figure 3 — measurements over instrumentation points:");
    println!("{:>10} {:>24}", "ip", "m");
    for point in &sweep {
        println!(
            "{:>10} {:>24}",
            point.instrumentation_points, point.measurements
        );
    }
}
