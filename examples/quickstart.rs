//! Quickstart: run the full measurement-based WCET analysis on a small
//! hand-written controller function.
//!
//! ```text
//! cargo run -p tmg-core --example quickstart
//! ```

use tmg_core::WcetAnalysis;
use tmg_minic::parse_function;
use tmg_minic::value::InputVector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        int cruise_control(char target __range(0, 12), char current __range(0, 12), bool enabled) {
            int command;
            command = 0;
            if (enabled) {
                if (target > current) {
                    accelerate();
                    command = target - current;
                } else {
                    if (current > target) {
                        brake();
                        command = 0 - (current - target);
                    } else {
                        hold_speed();
                    }
                }
                if (command > 5) { limit_command(); command = 5; }
            } else {
                controller_off();
            }
            return command;
        }
    "#;
    let function = parse_function(source)?;

    // Partition with path bound 4, generate test data (heuristic + model
    // checking), measure on the simulated HCS12 target and combine with the
    // timing schema.
    let analysis = WcetAnalysis::new(4);

    // The input space is small enough to also determine the true WCET
    // exhaustively, which lets us see the pessimism of the bound.
    let mut space = Vec::new();
    for target in 0..=12 {
        for current in 0..=12 {
            for enabled in 0..=1 {
                space.push(
                    InputVector::new()
                        .with("target", target)
                        .with("current", current)
                        .with("enabled", enabled),
                );
            }
        }
    }

    let report = analysis.analyse_with_exhaustive(&function, &space)?;
    println!("{report}");
    println!();
    println!(
        "The bound is sound: {} >= {}",
        report.wcet_bound,
        report.exhaustive_max.unwrap_or(0)
    );
    Ok(())
}
