//! The Table-2 ablation: how much each model-state optimisation helps the
//! model checker on the 105-line evaluation module.
//!
//! ```text
//! cargo run -p tmg-core --example optimization_ablation --release
//! ```

use tmg_cfg::{build_cfg, enumerate_region_paths};
use tmg_codegen::table2::table2_function;
use tmg_tsys::{CheckOutcome, ModelChecker, Optimisations, PathQuery};

fn main() {
    let function = table2_function();
    let lowered = build_cfg(&function);

    // The query: the deepest feasible path through the module (every
    // configuration answers the same query, exactly like the paper's
    // fixed simulation goal).
    let mut paths = enumerate_region_paths(&lowered.cfg, lowered.regions.root(), 4096)
        .expect("path enumeration");
    paths.sort_by_key(|p| std::cmp::Reverse(p.len()));
    let reference = ModelChecker::new();
    let query = paths
        .iter()
        .map(|p| PathQuery::new(p.decisions.clone()))
        .find(|q| {
            matches!(
                reference.find_test_data(&function, q).outcome,
                CheckOutcome::Feasible { .. }
            )
        })
        .unwrap_or_else(PathQuery::any_execution);
    println!(
        "query: drive the module down a {}-decision path\n",
        query.decisions.len()
    );

    let configurations = [
        ("unoptimized", Optimisations::none()),
        ("all optimisations used", Optimisations::all()),
        (
            "Variable Initialisation",
            Optimisations {
                variable_initialisation: true,
                ..Optimisations::none()
            },
        ),
        (
            "Variable Range Analysis",
            Optimisations {
                variable_range_analysis: true,
                ..Optimisations::none()
            },
        ),
        (
            "Reverse CSE",
            Optimisations {
                reverse_cse: true,
                ..Optimisations::none()
            },
        ),
        (
            "Statement Concatenation",
            Optimisations {
                statement_concatenation: true,
                ..Optimisations::none()
            },
        ),
        (
            "Dead Variable Elimination",
            Optimisations {
                dead_code_elimination: true,
                ..Optimisations::none()
            },
        ),
        (
            "Live-Variable Analysis",
            Optimisations {
                live_variable_analysis: true,
                ..Optimisations::none()
            },
        ),
    ];

    println!(
        "{:<28} {:>11} {:>13} {:>7} {:>13} {:>11}",
        "optimisation technique", "time [ms]", "memory [kB]", "steps", "transitions", "state bits"
    );
    for (label, opts) in configurations {
        let checker = ModelChecker::with_optimisations(opts);
        let result = checker.find_test_data(&function, &query);
        println!(
            "{:<28} {:>11.2} {:>13.1} {:>7} {:>13} {:>11}",
            label,
            result.stats.duration.as_secs_f64() * 1e3,
            result.stats.memory_estimate_bytes as f64 / 1024.0,
            result
                .stats
                .witness_steps
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            result.stats.transitions_fired,
            result.stats.state_bits
        );
    }
    println!("\n(paper, Table 2: unoptimized 283.4 s / 229 MB / 28 steps; all optimisations 2.2 s / 26 MB / 13 steps)");
}
