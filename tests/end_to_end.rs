//! Integration test: the complete pipeline on the Section-4 case study.

use tmg_cfg::build_cfg;
use tmg_codegen::{wiper_function, wiper_input_space, WIPER_STATE_COUNT};
use tmg_core::WcetAnalysis;

fn case_study_bound() -> u128 {
    let lowered = build_cfg(&wiper_function());
    lowered
        .regions
        .root()
        .children
        .iter()
        .map(|c| lowered.regions.region(*c).path_count)
        .max()
        .unwrap_or(1)
}

#[test]
fn wiper_case_study_bound_dominates_the_exhaustive_wcet() {
    let function = wiper_function();
    let space = wiper_input_space();
    let report = WcetAnalysis::new(case_study_bound())
        .analyse_with_exhaustive(&function, &space)
        .expect("analysis");
    let exhaustive = report.exhaustive_max.expect("exhaustive maximum");
    assert!(
        report.wcet_bound >= exhaustive,
        "bound {} must dominate the exhaustive maximum {}",
        report.wcet_bound,
        exhaustive
    );
    // The paper's pessimism is 274 / 250 ≈ 1.10; a simple timing schema on a
    // deterministic target should stay well below 1.6.
    let pessimism = report.pessimism().expect("pessimism");
    assert!(pessimism < 1.6, "pessimism {pessimism}");
    // One program segment per state case arm (plus the surrounding blocks).
    assert!(report.segments > WIPER_STATE_COUNT);
    assert!(report.unknown == 0, "every goal must be resolved");
}

#[test]
fn coarser_partitions_use_fewer_instrumentation_points_on_the_wiper() {
    let function = wiper_function();
    let fine = WcetAnalysis::new(1)
        .analyse(&function)
        .expect("fine analysis");
    let coarse = WcetAnalysis::new(case_study_bound())
        .analyse(&function)
        .expect("coarse analysis");
    assert!(fine.instrumentation_points > coarse.instrumentation_points);
    assert!(fine.measurements <= coarse.measurements * 10);
    // Both are sound with respect to each other's ordering: the finer
    // partition can only be more pessimistic.
    assert!(fine.wcet_bound >= coarse.wcet_bound);
}

#[test]
fn analysis_report_display_is_informative() {
    let function = wiper_function();
    let report = WcetAnalysis::new(case_study_bound())
        .analyse(&function)
        .expect("analysis");
    let text = report.to_string();
    assert!(text.contains("wiper_control_step"));
    assert!(text.contains("WCET bound"));
    assert!(text.contains("segments"));
}
