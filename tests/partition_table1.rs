//! Integration test: Table 1 of the paper is reproduced bit-for-bit by the
//! partitioning layer on the Figure-1 example.

use tmg_cfg::build_cfg;
use tmg_codegen::figure1_function;
use tmg_core::PartitionPlan;

#[test]
fn table1_is_reproduced_exactly() {
    let lowered = build_cfg(&figure1_function(false));
    let expected: [(u128, usize, u128); 7] = [
        (1, 22, 11),
        (2, 16, 9),
        (3, 16, 9),
        (4, 16, 9),
        (5, 16, 9),
        (6, 2, 6),
        (7, 2, 6),
    ];
    for (bound, ip, m) in expected {
        let plan = PartitionPlan::compute(&lowered, bound);
        assert_eq!(plan.instrumentation_points(), ip, "ip at b = {bound}");
        assert_eq!(plan.measurements(), m, "m at b = {bound}");
    }
}

#[test]
fn figure1_cfg_has_the_papers_shape() {
    let lowered = build_cfg(&figure1_function(false));
    // The paper's Figure-1 CFG: 11 measured nodes (start + 10), 6 paths.
    assert_eq!(lowered.cfg.measurable_units().len(), 11);
    assert_eq!(lowered.regions.root().path_count, 6);
    assert_eq!(lowered.cfg.conditional_branch_count(), 3);
    lowered.cfg.validate().expect("valid CFG");
    lowered
        .regions
        .validate(&lowered.cfg)
        .expect("single-entry regions");
}

#[test]
fn the_collapsed_segment_at_bound_two_is_the_inner_if_region() {
    let lowered = build_cfg(&figure1_function(false));
    let plan = PartitionPlan::compute(&lowered, 2);
    let collapsed: Vec<_> = plan
        .segments
        .iter()
        .filter(|s| s.is_region() && s.blocks.len() > 1)
        .collect();
    // Exactly one multi-block segment: the paper's "PS between node 4 and 15"
    // with four basic blocks and two paths.
    assert_eq!(collapsed.len(), 1);
    assert_eq!(collapsed[0].blocks.len(), 4);
    assert_eq!(collapsed[0].paths, 2);
}

#[test]
fn tradeoff_sweep_is_monotone_on_the_generated_automotive_code() {
    use tmg_codegen::{generate_automotive, AutomotiveConfig};
    use tmg_core::tradeoff::{log_spaced_bounds, sweep_path_bounds};
    let generated = generate_automotive(&AutomotiveConfig::small(42));
    let lowered = build_cfg(&generated.function);
    let sweep = sweep_path_bounds(&lowered, &log_spaced_bounds(100_000));
    assert_eq!(
        sweep[0].instrumentation_points,
        lowered.cfg.measurable_units().len() * 2
    );
    for pair in sweep.windows(2) {
        assert!(pair[1].instrumentation_points <= pair[0].instrumentation_points);
    }
    // Towards the end-to-end side of the curve the number of measurements
    // explodes (Figure 3) — unless the function is so small that it collapses
    // into a single end-to-end segment within the swept range.
    let first = sweep.first().expect("sweep");
    let last = sweep.last().expect("sweep");
    assert!(
        last.measurements > first.measurements || last.instrumentation_points == 2,
        "m must grow as ip shrinks (m {} -> {}, ip {} -> {})",
        first.measurements,
        last.measurements,
        first.instrumentation_points,
        last.instrumentation_points
    );
}
