//! Integration test: hybrid test-data generation on the wiper controller.

use tmg_cfg::build_cfg;
use tmg_codegen::wiper_function;
use tmg_core::{HybridGenerator, PartitionPlan};
use tmg_minic::Interpreter;
use tmg_minic::Program;

#[test]
fn hybrid_generation_resolves_every_goal_on_the_wiper() {
    let function = wiper_function();
    let lowered = build_cfg(&function);
    let bound = lowered
        .regions
        .root()
        .children
        .iter()
        .map(|c| lowered.regions.region(*c).path_count)
        .max()
        .unwrap_or(1);
    let plan = PartitionPlan::compute(&lowered, bound);
    let suite = HybridGenerator::new().generate(&function, &lowered, &plan);

    assert_eq!(suite.unknown_count(), 0, "every goal must be settled");
    assert_eq!(
        suite.covered_count() + suite.infeasible_count(),
        suite.goal_count()
    );
    // The heuristic phase carries most of the load (the paper expects >90 %
    // on its industrial code; the wiper's guards are easy for random search).
    assert!(
        suite.heuristic_ratio() > 0.8,
        "heuristic ratio {}",
        suite.heuristic_ratio()
    );
}

#[test]
fn generated_vectors_replay_deterministically_on_the_interpreter() {
    let function = wiper_function();
    let lowered = build_cfg(&function);
    let plan = PartitionPlan::compute(&lowered, 4);
    let suite = HybridGenerator::new().generate(&function, &lowered, &plan);
    let program = Program::new(vec![function.clone()]);
    let interp = Interpreter::new(&program);
    for vector in suite.vectors() {
        let out = interp.run(&function.name, &vector).expect("replay");
        assert!(
            out.return_value.is_some(),
            "the step function always returns"
        );
        let state = out.return_value.expect("state").raw();
        assert!(
            (0..9).contains(&state),
            "next state {state} must be a chart state"
        );
    }
}

#[test]
fn infeasible_paths_are_only_reported_when_truly_contradictory() {
    // In this function the `a > 5 && a < 3` conjunction is unsatisfiable, so
    // the path taking its then-branch must be reported infeasible and nothing
    // else.
    let src = r#"
        void f(char a __range(0, 9)) {
            if (a > 5 && a < 3) { impossible(); }
            if (a > 4) { upper(); } else { lower(); }
        }
    "#;
    let function = tmg_minic::parse_function(src).expect("parse");
    let lowered = build_cfg(&function);
    let plan = PartitionPlan::compute(&lowered, 100);
    let suite = HybridGenerator::new().generate(&function, &lowered, &plan);
    assert_eq!(
        suite.infeasible_count(),
        2,
        "two of the four end-to-end paths are contradictory"
    );
    assert_eq!(suite.covered_count(), 2);
    assert_eq!(suite.unknown_count(), 0);
}
