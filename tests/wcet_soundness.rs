//! Property-based soundness test: for every concrete input, the measured
//! end-to-end execution time never exceeds the WCET bound computed by the
//! partition-measure-schema pipeline.

use proptest::prelude::*;
use std::sync::OnceLock;
use tmg_cfg::build_cfg;
use tmg_codegen::wiper_function;
use tmg_core::WcetAnalysis;
use tmg_minic::value::InputVector;
use tmg_minic::Function;
use tmg_target::{CostModel, Machine};

struct Fixture {
    function: Function,
    bound_fine: u64,
    bound_coarse: u64,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let function = wiper_function();
        let bound_fine = WcetAnalysis::new(1)
            .analyse(&function)
            .expect("fine analysis")
            .wcet_bound;
        let bound_coarse = WcetAnalysis::new(64)
            .analyse(&function)
            .expect("coarse analysis")
            .wcet_bound;
        Fixture {
            function,
            bound_fine,
            bound_coarse,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn no_input_exceeds_the_wcet_bound(
        state in 0i64..9,
        speed in 0i64..3,
        wash in 0i64..2,
        endpos in 0i64..2,
        interval in 0i64..2,
        overcurrent in 0i64..2,
    ) {
        let fx = fixture();
        let lowered = build_cfg(&fx.function);
        let machine = Machine::new(&lowered.cfg, &fx.function, CostModel::hcs12());
        let inputs = InputVector::new()
            .with("current_state", state)
            .with("speed", speed)
            .with("wash", wash)
            .with("endpos", endpos)
            .with("interval", interval)
            .with("overcurrent", overcurrent);
        let cycles = machine.end_to_end_cycles(&inputs).expect("run");
        prop_assert!(cycles <= fx.bound_fine, "fine bound violated: {} > {}", cycles, fx.bound_fine);
        prop_assert!(cycles <= fx.bound_coarse, "coarse bound violated: {} > {}", cycles, fx.bound_coarse);
    }

    #[test]
    fn out_of_range_states_still_respect_the_bound(raw_state in -128i64..128) {
        // The chart's default arm catches unknown states; the bound must hold
        // for them too because the type wrapping keeps them in the modelled
        // domain.
        let fx = fixture();
        let lowered = build_cfg(&fx.function);
        let machine = Machine::new(&lowered.cfg, &fx.function, CostModel::hcs12());
        let inputs = InputVector::new().with("current_state", raw_state).with("speed", 1);
        let cycles = machine.end_to_end_cycles(&inputs).expect("run");
        prop_assert!(cycles <= fx.bound_fine);
    }
}

// ---------------------------------------------------------------------------
// Module-level soundness: the composed interprocedural bound dominates the
// exhaustively-measured end-to-end execution of whole modules, where every
// defined callee is executed for real by the `ModuleMachine` oracle.
// ---------------------------------------------------------------------------

mod module_soundness {
    use tmg_cfg::build_cfg;
    use tmg_codegen::{generate_module, ModuleGenConfig};
    use tmg_core::{ModuleAnalysis, ModuleReport};
    use tmg_minic::ast::Program;
    use tmg_minic::value::InputVector;
    use tmg_target::{CostModel, ModuleMachine};

    /// Asserts `bound(f) >= max over a in [lo, hi] of end-to-end cycles of
    /// f(a)` for every function of the module, with defined callees executed
    /// transitively.  All module fixtures take one ranged `a` parameter.
    fn assert_composed_bounds_dominate(
        program: &Program,
        report: &ModuleReport,
        domain: std::ops::RangeInclusive<i64>,
    ) {
        let lowered: Vec<_> = program.functions.iter().map(build_cfg).collect();
        let parts: Vec<_> = program
            .functions
            .iter()
            .zip(&lowered)
            .map(|(f, l)| (f, &l.cfg))
            .collect();
        let machine = ModuleMachine::new(&parts, &CostModel::hcs12());
        for function in &program.functions {
            let bound = report
                .bound_of(&function.name)
                .unwrap_or_else(|| panic!("no bound for {}", function.name));
            for value in domain.clone() {
                let inputs = InputVector::new().with(&function.params[0].name, value);
                let cycles = machine
                    .end_to_end_cycles(&function.name, &inputs)
                    .expect("module run");
                assert!(
                    cycles <= bound,
                    "{}({value}) ran {cycles} cycles, composed bound is {bound}",
                    function.name
                );
            }
        }
    }

    #[test]
    fn composed_bounds_dominate_a_handwritten_module() {
        let source = "\
            void top(char a __range(0, 3)) {
                mid(a);
                if (a == 0) { mid(a); } else { side(a); }
            }
            void mid(char a __range(0, 3)) {
                char t = 0;
                side(a);
                while (t < a) __bound(3) { t = t + 1; tick(); }
            }
            void side(char a __range(0, 3)) {
                if (a > 1) { heavy(); } else { light(); }
            }";
        let program = tmg_minic::parse_program(source).expect("parse");
        let report = ModuleAnalysis::new(4)
            .analyse_module(&program)
            .expect("module");
        assert_eq!(report.roots.len(), 1);
        assert_eq!(report.roots[0].function, "top");
        assert_composed_bounds_dominate(&program, &report, 0..=3);
    }

    #[test]
    fn composed_bounds_dominate_generated_call_dags() {
        // A deterministic corpus (seeded, not shrunk) keeps the runtime of
        // the exhaustive sweeps predictable: 6 modules x 5 functions x 4
        // input values, each executed transitively.
        for seed in [0u64, 1, 2, 17, 40, 77] {
            let module = generate_module(&ModuleGenConfig::small(seed));
            let report = ModuleAnalysis::new(4)
                .analyse_module(&module.program)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_composed_bounds_dominate(&module.program, &report, 0..=3);
        }
    }

    #[test]
    fn differential_reanalysis_stays_sound_after_an_edit() {
        // Warm-store reuse must never launder a stale bound into the edited
        // module: the differential report's bounds have to dominate the
        // exhaustive execution of the *edited* program just like a cold run.
        use std::sync::Arc;
        use tmg_core::ArtifactStore;
        let module = generate_module(&ModuleGenConfig::small(5));
        let store = Arc::new(ArtifactStore::new());
        let analysis = ModuleAnalysis::new(4).with_store(store);
        let cold = analysis.analyse_module(&module.program).expect("cold");
        assert_composed_bounds_dominate(&module.program, &cold, 0..=3);
        for edited_index in 0..module.function_count() {
            let edited = module.edited(edited_index);
            let differential = analysis
                .analyse_module(&edited.program)
                .expect("differential");
            assert_composed_bounds_dominate(&edited.program, &differential, 0..=3);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The partitioning invariants hold for arbitrary generated automotive
    /// programs: segments partition the measurable units and `ip` decreases
    /// monotonically with the path bound.
    #[test]
    fn partition_invariants_hold_for_generated_programs(seed in 0u64..64) {
        use tmg_codegen::{generate_automotive, AutomotiveConfig};
        use tmg_core::PartitionPlan;
        let generated = generate_automotive(&AutomotiveConfig::small(seed));
        let lowered = build_cfg(&generated.function);
        let mut previous_ip = usize::MAX;
        for bound in [1u128, 2, 4, 16, 1024] {
            let plan = PartitionPlan::compute(&lowered, bound);
            let mut covered: Vec<_> = plan
                .segments
                .iter()
                .flat_map(|s| s.blocks.iter().copied())
                .collect();
            covered.sort_unstable();
            let total: usize = plan.segments.iter().map(|s| s.blocks.len()).sum();
            prop_assert_eq!(total, covered.len(), "segments overlap at bound {}", bound);
            covered.dedup();
            let mut units = lowered.cfg.measurable_units();
            units.sort_unstable();
            prop_assert_eq!(covered, units, "segments must cover all units at bound {}", bound);
            prop_assert!(plan.instrumentation_points() <= previous_ip);
            previous_ip = plan.instrumentation_points();
        }
    }
}
