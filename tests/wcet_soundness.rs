//! Property-based soundness test: for every concrete input, the measured
//! end-to-end execution time never exceeds the WCET bound computed by the
//! partition-measure-schema pipeline.

use proptest::prelude::*;
use std::sync::OnceLock;
use tmg_cfg::build_cfg;
use tmg_codegen::wiper_function;
use tmg_core::WcetAnalysis;
use tmg_minic::value::InputVector;
use tmg_minic::Function;
use tmg_target::{CostModel, Machine};

struct Fixture {
    function: Function,
    bound_fine: u64,
    bound_coarse: u64,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let function = wiper_function();
        let bound_fine = WcetAnalysis::new(1)
            .analyse(&function)
            .expect("fine analysis")
            .wcet_bound;
        let bound_coarse = WcetAnalysis::new(64)
            .analyse(&function)
            .expect("coarse analysis")
            .wcet_bound;
        Fixture {
            function,
            bound_fine,
            bound_coarse,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn no_input_exceeds_the_wcet_bound(
        state in 0i64..9,
        speed in 0i64..3,
        wash in 0i64..2,
        endpos in 0i64..2,
        interval in 0i64..2,
        overcurrent in 0i64..2,
    ) {
        let fx = fixture();
        let lowered = build_cfg(&fx.function);
        let machine = Machine::new(&lowered.cfg, &fx.function, CostModel::hcs12());
        let inputs = InputVector::new()
            .with("current_state", state)
            .with("speed", speed)
            .with("wash", wash)
            .with("endpos", endpos)
            .with("interval", interval)
            .with("overcurrent", overcurrent);
        let cycles = machine.end_to_end_cycles(&inputs).expect("run");
        prop_assert!(cycles <= fx.bound_fine, "fine bound violated: {} > {}", cycles, fx.bound_fine);
        prop_assert!(cycles <= fx.bound_coarse, "coarse bound violated: {} > {}", cycles, fx.bound_coarse);
    }

    #[test]
    fn out_of_range_states_still_respect_the_bound(raw_state in -128i64..128) {
        // The chart's default arm catches unknown states; the bound must hold
        // for them too because the type wrapping keeps them in the modelled
        // domain.
        let fx = fixture();
        let lowered = build_cfg(&fx.function);
        let machine = Machine::new(&lowered.cfg, &fx.function, CostModel::hcs12());
        let inputs = InputVector::new().with("current_state", raw_state).with("speed", 1);
        let cycles = machine.end_to_end_cycles(&inputs).expect("run");
        prop_assert!(cycles <= fx.bound_fine);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The partitioning invariants hold for arbitrary generated automotive
    /// programs: segments partition the measurable units and `ip` decreases
    /// monotonically with the path bound.
    #[test]
    fn partition_invariants_hold_for_generated_programs(seed in 0u64..64) {
        use tmg_codegen::{generate_automotive, AutomotiveConfig};
        use tmg_core::PartitionPlan;
        let generated = generate_automotive(&AutomotiveConfig::small(seed));
        let lowered = build_cfg(&generated.function);
        let mut previous_ip = usize::MAX;
        for bound in [1u128, 2, 4, 16, 1024] {
            let plan = PartitionPlan::compute(&lowered, bound);
            let mut covered: Vec<_> = plan
                .segments
                .iter()
                .flat_map(|s| s.blocks.iter().copied())
                .collect();
            covered.sort_unstable();
            let total: usize = plan.segments.iter().map(|s| s.blocks.len()).sum();
            prop_assert_eq!(total, covered.len(), "segments overlap at bound {}", bound);
            covered.dedup();
            let mut units = lowered.cfg.measurable_units();
            units.sort_unstable();
            prop_assert_eq!(covered, units, "segments must cover all units at bound {}", bound);
            prop_assert!(plan.instrumentation_points() <= previous_ip);
            previous_ip = plan.instrumentation_points();
        }
    }
}
