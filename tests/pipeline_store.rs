//! Acceptance tests for the content-addressed artifact store: a second
//! analysis of an unchanged function must perform no re-partitioning and no
//! re-encoding (asserted through the store's per-stage hit/miss counters),
//! a changed input must miss, and every cached path must return bit-identical
//! results to the storeless pipeline.

use std::sync::Arc;
use tmg_core::pipeline::{ArtifactStore, Stage, StageStats};
use tmg_core::WcetAnalysis;
use tmg_minic::parse_function;

fn controller() -> tmg_minic::Function {
    // The nested `demand > 3 && demand < 2` combination is infeasible, so
    // every partition leaves a residual goal for the model checker — at
    // fine bounds as an unreachable block-execution goal, at coarse bounds
    // as an unsatisfiable region-path goal.  The prepare-model stage (whose
    // lazy build only runs for a non-empty residual batch) is therefore
    // exercised at every bound.
    parse_function(
        r#"
        void controller(char demand __range(0, 6), bool enabled) {
            if (enabled) {
                if (demand > 3) { heavy(); } else { light(); }
            } else {
                off();
            }
            if (demand > 3) { if (demand < 2) { never(); } }
            if (demand == 0) { idle(); }
        }
        "#,
    )
    .expect("parse")
}

#[test]
fn second_analyse_of_an_unchanged_function_recomputes_nothing() {
    let store = Arc::new(ArtifactStore::new());
    let analysis = WcetAnalysis::new(2).with_store(store.clone());
    let f = controller();

    let first = analysis.analyse(&f).expect("first analysis");
    // The cold run computes each stage exactly once.
    for stage in [
        Stage::Lower,
        Stage::Partition,
        Stage::PrepareModel,
        Stage::Testgen,
        Stage::Measure,
        Stage::Bound,
    ] {
        assert_eq!(
            store.stats(stage),
            StageStats::hm(0, 1),
            "cold run must compute stage {stage} once"
        );
    }

    let second = analysis.analyse(&f).expect("second analysis");
    assert_eq!(first, second, "cached report must be bit-identical");
    // The warm run is served entirely from the final bound artifact: no
    // re-partitioning, no re-encoding, not even a lookup of the earlier
    // stages.
    assert_eq!(store.stats(Stage::Bound), StageStats::hm(1, 1));
    for stage in [
        Stage::Lower,
        Stage::Partition,
        Stage::PrepareModel,
        Stage::Testgen,
        Stage::Measure,
    ] {
        assert_eq!(
            store.stats(stage),
            StageStats::hm(0, 1),
            "warm run must not touch stage {stage}"
        );
    }
}

#[test]
fn changing_the_bound_reuses_lowering_and_the_prepared_model() {
    let store = Arc::new(ArtifactStore::new());
    let f = controller();
    let at_bound = |b: u128| {
        WcetAnalysis::new(b)
            .with_store(store.clone())
            .analyse(&f)
            .expect("analysis")
    };
    // Bound 2 keeps the infeasible `demand > 3 && demand < 2` pair inside a
    // collapsed region (a decision-carrying residual goal); bound 1 would
    // reduce it to a single-path region goal the heuristic matches
    // trivially, and the prepare-model stage would never run for that plan.
    let fine = at_bound(2);
    let coarse = at_bound(100);
    assert!(fine.instrumentation_points > coarse.instrumentation_points);
    // Two bounds → two partitions, two suites, two campaigns, two bounds...
    assert_eq!(store.stats(Stage::Partition), StageStats::hm(0, 2));
    assert_eq!(store.stats(Stage::Bound), StageStats::hm(0, 2));
    // ...but one lowering and one encoded model serve both.
    assert_eq!(store.stats(Stage::Lower), StageStats::hm(1, 1));
    assert_eq!(store.stats(Stage::PrepareModel), StageStats::hm(1, 1));
}

#[test]
fn a_changed_function_body_misses_every_stage() {
    let store = Arc::new(ArtifactStore::new());
    let analysis = WcetAnalysis::new(2).with_store(store.clone());
    analysis.analyse(&controller()).expect("original");
    // Same name and signature, different body: the content hash must differ.
    let changed = parse_function(
        r#"
        void controller(char demand __range(0, 6), bool enabled) {
            if (enabled) {
                if (demand > 3) { heavy(); } else { light(); }
            } else {
                off();
            }
            if (demand == 1) { idle(); }
        }
        "#,
    )
    .expect("parse");
    analysis.analyse(&changed).expect("changed");
    assert_eq!(store.stats(Stage::Lower), StageStats::hm(0, 2));
    assert_eq!(store.stats(Stage::Bound), StageStats::hm(0, 2));
}

#[test]
fn stored_and_storeless_reports_are_identical_including_exhaustive_runs() {
    let f = controller();
    let space: Vec<tmg_minic::value::InputVector> = (0..=6)
        .flat_map(|d| {
            (0..=1).map(move |e| {
                tmg_minic::value::InputVector::new()
                    .with("demand", d)
                    .with("enabled", e)
            })
        })
        .collect();
    let plain = WcetAnalysis::new(2)
        .analyse_with_exhaustive(&f, &space)
        .expect("plain");
    let store = Arc::new(ArtifactStore::new());
    let stored_analysis = WcetAnalysis::new(2).with_store(store.clone());
    let stored = stored_analysis
        .analyse_with_exhaustive(&f, &space)
        .expect("stored");
    assert_eq!(plain, stored);
    // The exhaustive space is part of the bound key: re-running hits, a
    // different space misses.
    let again = stored_analysis
        .analyse_with_exhaustive(&f, &space)
        .expect("stored again");
    assert_eq!(again, plain);
    assert_eq!(store.stats(Stage::Bound).hits, 1);
    let narrower = &space[..4];
    stored_analysis
        .analyse_with_exhaustive(&f, narrower)
        .expect("narrower space");
    assert_eq!(
        store.stats(Stage::Bound).misses,
        2,
        "a different input space must key a different bound artifact"
    );
}

#[test]
fn detailed_analysis_through_the_store_reuses_stage_artifacts() {
    let store = Arc::new(ArtifactStore::new());
    let analysis = WcetAnalysis::new(2).with_store(store.clone());
    let f = controller();
    let (plan1, suite1, campaign1, report1) = analysis.analyse_detailed(&f).expect("first");
    let (plan2, suite2, campaign2, report2) = analysis.analyse_detailed(&f).expect("second");
    assert_eq!(plan1, plan2);
    assert_eq!(suite1, suite2);
    assert_eq!(campaign1, campaign2);
    assert_eq!(report1, report2);
    // The second detailed run materialises the chain purely from hits.
    assert_eq!(store.stats(Stage::Partition), StageStats::hm(1, 1));
    assert_eq!(store.stats(Stage::Testgen), StageStats::hm(1, 1));
    assert_eq!(store.stats(Stage::Measure), StageStats::hm(1, 1));
}
