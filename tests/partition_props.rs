//! Property-based partition invariants: for random mini-C functions and
//! random path bounds, every partition plan must
//!
//! * cover every measurable CFG block with exactly one segment,
//! * answer `segment_of_block` consistently with the segment block lists,
//! * report per-segment path counts that are ≥ 1 and consistent with the
//!   region tree (a whole-region segment carries the region's path count and
//!   respects the bound; a single-block segment carries exactly 1), and
//! * agree with the count-only [`PathCounts::partition_stats`] fast path and
//!   the incremental tradeoff sweep on `(segments, ip, m)`.

use proptest::prelude::*;
use tmg_cfg::{build_cfg, PathCounts};
use tmg_core::tradeoff::{sweep_path_bounds_reference, sweep_with_counts};
use tmg_core::{PartitionPlan, SegmentKind};
use tmg_minic::parse_function;

/// Deterministic draw stream decoding one `u64` seed into small choices
/// (the vendored proptest only supplies integer-range strategies).
struct Draws(u64);

impl Draws {
    fn next(&mut self, n: u64) -> u64 {
        let v = self.0 % n;
        self.0 = (self.0 / n).rotate_left(17) ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        v
    }
}

/// Builds a random mini-C function with nested branches, switches and
/// bounded loops over two small-domain parameters.
fn random_function(shape: u64, depth: u64) -> String {
    let mut d = Draws(shape);
    let mut decls = String::new();
    let mut body = String::new();
    let mut label = 0usize;
    emit_block(&mut d, depth, &mut decls, &mut body, &mut label, 1);
    format!("void f(char a __range(0, 4), char b __range(0, 3)) {{\n{decls}{body}}}\n")
}

fn emit_block(
    d: &mut Draws,
    depth: u64,
    decls: &mut String,
    body: &mut String,
    label: &mut usize,
    indent: usize,
) {
    let stmts = 1 + d.next(3);
    for _ in 0..stmts {
        let k = *label;
        *label += 1;
        let pad = "    ".repeat(indent);
        let var = if d.next(2) == 0 { "a" } else { "b" };
        match d.next(if depth > 0 { 5 } else { 2 }) {
            0 => body.push_str(&format!("{pad}call{k}();\n")),
            1 => {
                let lit = d.next(5);
                body.push_str(&format!("{pad}if ({var} > {lit}) {{ leaf{k}(); }}\n"));
            }
            2 => {
                let lit = d.next(4);
                body.push_str(&format!("{pad}if ({var} == {lit}) {{\n"));
                emit_block(d, depth - 1, decls, body, label, indent + 1);
                body.push_str(&format!("{pad}}} else {{\n"));
                emit_block(d, depth - 1, decls, body, label, indent + 1);
                body.push_str(&format!("{pad}}}\n"));
            }
            3 => {
                body.push_str(&format!("{pad}switch ({var}) {{\n"));
                let arms = 1 + d.next(3);
                for arm in 0..arms {
                    body.push_str(&format!("{pad}case {arm}:\n"));
                    emit_block(d, depth - 1, decls, body, label, indent + 1);
                    body.push_str(&format!("{pad}    break;\n"));
                }
                body.push_str(&format!("{pad}default:\n"));
                emit_block(d, depth - 1, decls, body, label, indent + 1);
                body.push_str(&format!("{pad}    break;\n"));
                body.push_str(&format!("{pad}}}\n"));
            }
            _ => {
                decls.push_str(&format!("    char i{k} = 0;\n"));
                body.push_str(&format!(
                    "{pad}while (i{k} < {var}) __bound(3) {{\n{pad}    i{k} = i{k} + 1;\n"
                ));
                emit_block(d, depth.saturating_sub(1), decls, body, label, indent + 1);
                body.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_invariants_hold_for_random_functions(
        shape in 0u64..u64::MAX,
        depth in 1u64..4,
        bound_pick in 0u64..6,
    ) {
        let src = random_function(shape, depth);
        let f = parse_function(&src).expect("generated function parses");
        let lowered = build_cfg(&f);
        lowered.regions.validate(&lowered.cfg).expect("single-entry regions");
        let bound = [1u128, 2, 3, 5, 50, u128::MAX][bound_pick as usize];
        let plan = PartitionPlan::compute(&lowered, bound);

        // Every measurable unit lands in exactly one segment.
        let mut covered: Vec<_> = plan
            .segments
            .iter()
            .flat_map(|s| s.blocks.iter().copied())
            .collect();
        let total_blocks = covered.len();
        covered.sort_unstable();
        covered.dedup();
        prop_assert_eq!(
            covered.len(), total_blocks,
            "segments overlap in {}", src
        );
        let mut units = lowered.cfg.measurable_units();
        units.sort_unstable();
        prop_assert_eq!(&covered, &units, "segments must partition the units of {}", src);

        // segment_of_block agrees with the block lists, everywhere.
        for segment in &plan.segments {
            for &block in &segment.blocks {
                let found = plan.segment_of_block(block).expect("covered block");
                prop_assert_eq!(found.id, segment.id, "index diverges in {}", src);
            }
        }
        prop_assert!(plan.segment_of_block(lowered.cfg.exit()).is_none());

        // Path counts: >= 1, region segments carry the region tree's count
        // and respect the bound, block segments carry exactly 1.
        for segment in &plan.segments {
            prop_assert!(segment.paths >= 1, "zero-path segment in {}", src);
            match segment.kind {
                SegmentKind::Region(region_id) => {
                    let region = lowered.regions.region(region_id);
                    prop_assert_eq!(segment.paths, region.path_count, "count mismatch in {}", src);
                    prop_assert!(segment.paths <= bound, "bound violated in {}", src);
                    prop_assert_eq!(&segment.blocks, &region.blocks, "blocks mismatch in {}", src);
                }
                SegmentKind::Block(block) => {
                    prop_assert_eq!(segment.paths, 1);
                    prop_assert_eq!(segment.blocks.as_slice(), &[block]);
                }
            }
        }

        // The count-only fast path and the incremental sweep agree with the
        // materialised plan.
        let counts = PathCounts::compute(&lowered);
        let stats = counts.partition_stats(bound);
        prop_assert_eq!(stats.segments, plan.segments.len());
        prop_assert_eq!(stats.instrumentation_points(), plan.instrumentation_points());
        prop_assert_eq!(stats.measurements, plan.measurements());
        let bounds = [1u128, bound, 7];
        prop_assert_eq!(
            sweep_with_counts(&counts, &bounds),
            sweep_path_bounds_reference(&lowered, &bounds),
            "sweep diverges on {}", src
        );
    }
}
