//! Property-based interprocedural invariants over generated call-DAG
//! modules:
//!
//! * the call graph's `dirty_cone` is exactly the reverse-reachable set of
//!   the edited function (computed here independently by forward DFS over
//!   callee edges),
//! * `reverse_topological_order` is a permutation in which every callee
//!   precedes its callers,
//! * a differential re-analysis after a random single-function edit
//!   recomputes exactly the dirty cone and returns a report bit-identical
//!   to a from-scratch analysis of the edited module, and
//! * module reports are identical whether the internal fan-outs run on the
//!   worker pool or inline on one thread.

use proptest::prelude::*;
use std::sync::Arc;
use tmg_cfg::CallGraph;
use tmg_codegen::{generate_module, ModuleGenConfig};
use tmg_core::{ArtifactStore, ModuleAnalysis};

/// Whether `from` can reach `to` along callee edges (forward DFS; the
/// independent oracle for `dirty_cone`, which walks *caller* edges).
fn reaches(graph: &CallGraph, from: usize, to: usize) -> bool {
    let mut seen = vec![false; graph.len()];
    let mut stack = vec![from];
    while let Some(i) = stack.pop() {
        if i == to {
            return true;
        }
        if std::mem::replace(&mut seen[i], true) {
            continue;
        }
        stack.extend(graph.callees(i).iter().copied());
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn the_dirty_cone_is_the_exact_reverse_reachable_set(
        seed in 0u64..u64::MAX,
        edited in 0usize..5,
    ) {
        let module = generate_module(&ModuleGenConfig::small(seed));
        let graph = CallGraph::build(&module.program);
        let cone = graph.dirty_cone(&[edited]);
        let expected: Vec<usize> = (0..graph.len())
            .filter(|&i| reaches(&graph, i, edited))
            .collect();
        prop_assert_eq!(cone, expected, "cone diverges on\n{}", module.source);
    }

    #[test]
    fn the_summary_order_visits_every_callee_before_its_callers(seed in 0u64..u64::MAX) {
        let module = generate_module(&ModuleGenConfig::small(seed));
        let graph = CallGraph::build(&module.program);
        let order = graph.reverse_topological_order().expect("generated DAG");
        let mut position = vec![usize::MAX; graph.len()];
        for (pos, &i) in order.iter().enumerate() {
            position[i] = pos;
        }
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..graph.len()).collect::<Vec<_>>(), "not a permutation");
        for i in 0..graph.len() {
            for &j in graph.callees(i) {
                prop_assert!(
                    position[j] < position[i],
                    "callee f{} must be summarised before caller f{} in\n{}",
                    j, i, module.source
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn differential_reanalysis_recomputes_the_cone_and_matches_scratch(
        seed in 0u64..256,
        edited in 0usize..5,
    ) {
        let module = generate_module(&ModuleGenConfig::small(seed));
        let store = Arc::new(ArtifactStore::new());
        let analysis = ModuleAnalysis::new(4).with_store(store.clone());
        let before = analysis.analyse_module(&module.program).expect("cold");
        prop_assert_eq!(before.summaries_computed, module.function_count());

        let edited_module = module.edited(edited);
        let after = analysis.analyse_module(&edited_module.program).expect("differential");

        // Exactly the reverse-reachable cone of the edit is recomputed.
        let graph = CallGraph::build(&module.program);
        let cone: Vec<String> = graph
            .dirty_cone(&[edited])
            .into_iter()
            .map(|i| graph.name(i).to_owned())
            .collect();
        prop_assert_eq!(
            after.recomputed(),
            cone.iter().map(String::as_str).collect::<Vec<_>>(),
            "wrong cone on edit of f{} in\n{}", edited, module.source
        );
        prop_assert_eq!(after.summaries_reused, module.function_count() - cone.len());

        // Outside the cone nothing moves; the edited function gets heavier.
        for summary in &before.summaries {
            if !cone.contains(&summary.function) {
                prop_assert_eq!(after.bound_of(&summary.function), Some(summary.wcet_bound));
            }
        }
        let f_edited = format!("f{edited}");
        prop_assert!(after.bound_of(&f_edited) > before.bound_of(&f_edited));

        // The differential result is bit-identical to a from-scratch run.
        let scratch = ModuleAnalysis::new(4)
            .analyse_module(&edited_module.program)
            .expect("scratch");
        prop_assert_eq!(&after.reports, &scratch.reports);
        prop_assert_eq!(&after.summaries.iter().map(|s| (s.summary_key, s.wcet_bound)).collect::<Vec<_>>(),
                        &scratch.summaries.iter().map(|s| (s.summary_key, s.wcet_bound)).collect::<Vec<_>>());
        prop_assert_eq!(after.module_key, scratch.module_key);
        prop_assert_eq!(&after.roots, &scratch.roots);
    }
}

/// The vendored worker pool runs nested fan-outs inline when the calling
/// thread is itself a pool worker (name prefix `rayon-shim-`).  Spawning the
/// whole analysis on such a thread therefore forces the single-threaded
/// path; the reports must be bit-identical to the parallel run.
#[test]
fn module_bounds_are_identical_across_thread_counts() {
    let module = generate_module(&ModuleGenConfig::small(0xAB));
    let parallel = ModuleAnalysis::new(4)
        .analyse_module(&module.program)
        .expect("parallel");
    let sequential = std::thread::Builder::new()
        .name("rayon-shim-inline-probe".to_owned())
        .spawn(move || {
            ModuleAnalysis::new(4)
                .analyse_module(&module.program)
                .expect("sequential")
        })
        .expect("spawn")
        .join()
        .expect("join");
    assert_eq!(parallel.reports, sequential.reports);
    assert_eq!(parallel.module_key, sequential.module_key);
    assert_eq!(parallel.roots, sequential.roots);
    assert_eq!(
        parallel
            .summaries
            .iter()
            .map(|s| (s.summary_key, s.wcet_bound))
            .collect::<Vec<_>>(),
        sequential
            .summaries
            .iter()
            .map(|s| (s.summary_key, s.wcet_bound))
            .collect::<Vec<_>>()
    );
}
