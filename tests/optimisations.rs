//! Integration test: the Table-2 optimisation ablation has the shape the
//! paper reports (every optimisation helps, all of them together help most,
//! statement concatenation is the one that shortens the witness run).

use tmg_cfg::{build_cfg, enumerate_region_paths};
use tmg_codegen::table2::table2_function;
use tmg_tsys::{
    apply_optimisations, encode_function, CheckOutcome, ModelChecker, Optimisations, PathQuery,
};

fn deepest_feasible_query() -> PathQuery {
    let function = table2_function();
    let lowered = build_cfg(&function);
    let mut paths =
        enumerate_region_paths(&lowered.cfg, lowered.regions.root(), 4096).expect("enumeration");
    paths.sort_by_key(|p| std::cmp::Reverse(p.len()));
    let checker = ModelChecker::new();
    paths
        .iter()
        .map(|p| PathQuery::new(p.decisions.clone()))
        .find(|q| {
            matches!(
                checker.find_test_data(&table2_function(), q).outcome,
                CheckOutcome::Feasible { .. }
            )
        })
        .expect("at least one feasible deep path")
}

#[test]
fn all_optimisations_beat_the_naive_encoding_on_every_cost_axis() {
    let function = table2_function();
    let query = deepest_feasible_query();
    let naive =
        ModelChecker::with_optimisations(Optimisations::none()).find_test_data(&function, &query);
    let optimised =
        ModelChecker::with_optimisations(Optimisations::all()).find_test_data(&function, &query);
    assert!(matches!(naive.outcome, CheckOutcome::Feasible { .. }));
    assert!(matches!(optimised.outcome, CheckOutcome::Feasible { .. }));
    assert!(optimised.stats.transitions_fired < naive.stats.transitions_fired);
    assert!(optimised.stats.state_bits < naive.stats.state_bits);
    assert!(optimised.stats.memory_estimate_bytes < naive.stats.memory_estimate_bytes);
    assert!(
        optimised.stats.witness_steps.unwrap_or(u64::MAX)
            < naive.stats.witness_steps.unwrap_or(0).max(1) * 2
    );
}

#[test]
fn each_single_optimisation_never_increases_the_state_vector() {
    let function = table2_function();
    let naive_bits =
        encode_function(&function, &Optimisations::none().encode_options()).state_bits();
    let singles = [
        Optimisations {
            reverse_cse: true,
            ..Optimisations::none()
        },
        Optimisations {
            live_variable_analysis: true,
            ..Optimisations::none()
        },
        Optimisations {
            statement_concatenation: true,
            ..Optimisations::none()
        },
        Optimisations {
            variable_range_analysis: true,
            ..Optimisations::none()
        },
        Optimisations {
            variable_initialisation: true,
            ..Optimisations::none()
        },
        Optimisations {
            dead_code_elimination: true,
            ..Optimisations::none()
        },
    ];
    for opts in singles {
        let (transformed, _) = apply_optimisations(&function, &opts);
        let bits = encode_function(&transformed, &opts.encode_options()).state_bits();
        assert!(
            bits <= naive_bits,
            "{:?} must not grow the state vector ({bits} > {naive_bits})",
            opts.enabled_names()
        );
    }
}

#[test]
fn the_planted_structure_of_the_table2_module_is_exploited() {
    let function = table2_function();
    // Reverse CSE removes the three planted temporaries.
    let (_, report) = apply_optimisations(
        &function,
        &Optimisations {
            reverse_cse: true,
            ..Optimisations::none()
        },
    );
    assert_eq!(report.substituted_temps.len(), 3, "t_speed, t_level, t_sum");
    // Live-variable analysis removes the three unused spares.
    let (_, report) = apply_optimisations(
        &function,
        &Optimisations {
            live_variable_analysis: true,
            ..Optimisations::none()
        },
    );
    let spares = report
        .removed_vars
        .iter()
        .filter(|v| v.starts_with("spare"))
        .count();
    assert_eq!(spares, 3, "spare1..spare3");
    // Dead-code elimination removes the diagnosis counters that never reach
    // relevant control flow.
    let (transformed, report) = apply_optimisations(
        &function,
        &Optimisations {
            dead_code_elimination: true,
            ..Optimisations::none()
        },
    );
    assert!(report.removed_vars.iter().any(|v| v == "log_count"));
    assert!(report.removed_vars.iter().any(|v| v == "last_cmd"));
    assert!(transformed.branch_count() < function.branch_count());
    // Variable initialisation touches every uninitialised local.
    let (_, report) = apply_optimisations(
        &function,
        &Optimisations {
            variable_initialisation: true,
            ..Optimisations::none()
        },
    );
    assert!(report.initialised_vars.len() >= 9);
    // Statement concatenation reduces the number of model transitions.
    let naive = encode_function(&function, &Optimisations::none().encode_options());
    let fused = encode_function(
        &function,
        &Optimisations {
            statement_concatenation: true,
            ..Optimisations::none()
        }
        .encode_options(),
    );
    assert!(fused.transitions.len() < naive.transitions.len());
}
